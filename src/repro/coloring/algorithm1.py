"""Algorithm 1: (Δ+1)-list-coloring in KT-1 CONGEST with Õ(n^1.5) messages.

Paper Section 3.1 / Theorem 3.3.  Pipeline (each step a protocol stage):

1. Build a danner with δ = 1/2, elect a leader, and have it broadcast a
   shared random string R of Θ(log² n) bits (Corollary 1.2).
2. Every node locally derives the level-0 hash functions (h_L, h, h_c)
   from R.  *The KT-1 trick*: a node evaluates the hashes on its
   neighbors' IDs too, so partition membership of every neighbor — and
   hence which incident edges are active — is known without any of Chang
   et al.'s state-exchange messages.
3. Color every B_i in parallel with Johansson's list coloring, talking
   only over E(G[B_i]) (Property (i): O(n) edges per part).
4. Check |E(G[L])| by upcast over the danner tree; if it is Õ(n), color
   G[L] directly with Johansson; otherwise recurse on L with the same
   parameter n (Lemma 3.2: O(1) levels whp).

Between levels, nodes that just got colored send their final color once
to each neighbor that remains in the remnant (again locally identified by
hashing) — the Õ(q·m) = o(m) list-maintenance term discussed in
DESIGN.md.  A node whose part-list goes empty (a whp-impossible failure
of Lemma 3.1's property (ii)) *defers*: it announces itself and is folded
into the remnant, keeping the algorithm always-correct.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.congest.node import Context, NodeAlgorithm
from repro.coloring import partition as P
from repro.coloring.johansson import JohanssonListColoring
from repro.errors import ProtocolError
from repro.substrates.danner import build_danner, share_random_bits
from repro.substrates.flooding import TreeAggregate


class NotifyStage(NodeAlgorithm):
    """Inter-level palette maintenance.

    Nodes colored at the level just finished send their color once to
    every remnant neighbor; nodes that deferred announce themselves to all
    neighbors (a rare event), and colored-this-level nodes answer such
    announcements with their color so no strike is missed.
    """

    passive_when_idle = True

    def setup(self, ctx: Context) -> None:
        state = ctx.input or {}
        self.role = state.get("role", "idle")
        self.color = state.get("color")
        self.targets = state.get("targets", ())
        self.struck: list[int] = []
        self.extras: list = []

    def _publish(self, ctx: Context) -> None:
        ctx.done({"struck": tuple(self.struck),
                  "extras": tuple(self.extras)})

    def on_round(self, ctx: Context, inbox) -> None:
        if ctx.round == 0:
            if self.role == "colored":
                for u in self.targets:
                    ctx.send(u, "color", self.color)
            elif self.role == "deferred":
                for u in ctx.neighbor_ids:
                    ctx.send(u, "deferred")
        for msg in inbox:
            if msg.tag == "color":
                (c,) = msg.fields
                self.struck.append(c)
            elif msg.tag == "deferred":
                self.extras.append(msg.sender_id)
                if self.role == "colored":
                    ctx.send(msg.sender_id, "color", self.color)
        self._publish(ctx)


@dataclass
class LevelReport:
    """Diagnostics for one recursion level."""

    level: int
    remnant_size: int
    remnant_edges: int
    remnant_max_degree: int
    k: int
    q: float
    colored: int
    deferred: int
    base_case: bool


@dataclass
class Algorithm1Result:
    colors: list[Optional[int]]
    levels: list[LevelReport] = field(default_factory=list)
    deferred_total: int = 0
    messages: int = 0
    rounds: int = 0
    danner_edges: int = 0
    random_bits: int = 0

    @property
    def num_levels(self) -> int:
        return len(self.levels)


def _tuple_combine(a, b):
    return (a[0] + b[0], max(a[1], b[1]))


def run_algorithm1(
    net,
    seed=0,
    delta: float = 0.5,
    base_edge_factor: Optional[float] = None,
    small_degree_threshold: Optional[int] = None,
    max_levels: int = 8,
    independence_constant: float = 1.0,
    name_prefix: str = "alg1",
) -> Algorithm1Result:
    """Run Algorithm 1 on a connected KT-1 network (non-comparison-based).

    Produces a proper coloring where vertex v's color lies in
    {0, ..., deg(v)} ⊆ {0, ..., Δ} — i.e. a (Δ+1)-coloring realized as
    (deg+1)-list-coloring, exactly the paper's setting.
    """
    if net.comparison_based:
        raise ProtocolError(
            "Algorithm 1 is non-comparison-based (it hashes IDs); "
            "run it on a network with comparison_based=False"
        )
    n = net.graph.n
    graph = net.graph
    id_space = net.assignment.space_bound()
    msgs_before = net.stats.messages
    rounds_before = net.stats.rounds
    log2n = max(n, 2).bit_length()
    if base_edge_factor is None:
        # Base case at |E(G[L])| = Õ(n) (Step 4 of Algorithm 1).
        base_edge_factor = float(max(2, log2n))
    if small_degree_threshold is None:
        # Partitioning pays off only for Delta = omega(log^2 n) (Lemma 3.1).
        small_degree_threshold = max(8, log2n * log2n)

    # Step 1: danner and leader.  The shared random string is broadcast
    # per recursion level (each level is a fresh invocation of Step 1's
    # broadcast in the paper's recursion), so only O(1) levels' worth of
    # bits ever crosses the wire (Lemma 3.2).
    danner = build_danner(net, delta=delta, seed=seed,
                          name_prefix=f"{name_prefix}-danner")
    bits_one_level = P.bits_per_level(n, id_space, independence_constant)
    total_bits = 0
    tree_inputs = danner.tree_inputs()

    # Per-node local state (driver-held, node-local information only).
    values = [net.assignment.value_of(v) for v in range(n)]
    colors: list[Optional[int]] = [None] * n
    palettes: list[set[int]] = [
        set(range(graph.degree(v) + 1)) for v in range(n)
    ]
    deferred = [False] * n
    extras: list[set] = [set() for _ in range(n)]

    levels_info: list[tuple[P.LevelHashes, float, int]] = []
    reports: list[LevelReport] = []
    deferred_total = 0

    def hash_remnant(value: int, upto: int) -> bool:
        """Remnant membership (hash part): L-member at all levels <= upto."""
        return all(
            P.is_l_member(h, value, q) for h, q, _k in levels_info[: upto + 1]
        )

    def in_remnant(v: int, upto: int) -> bool:
        if colors[v] is not None:
            return False
        if deferred[v]:
            return True
        return hash_remnant(values[v], upto)

    def remnant_neighbor_ids(v: int, upto: int) -> frozenset:
        """Neighbors of v that are remnant members (hash + learned extras)."""
        out = set()
        for u_id in net.knowledge[v].neighbor_ids:
            if u_id in extras[v] or hash_remnant(u_id.value, upto):
                out.add(u_id)
        return frozenset(out)

    for level in range(max_levels):
        upto_prev = level - 1
        # -- measure the remnant over the danner tree -----------------------
        measure_inputs = []
        for v in range(n):
            if in_remnant(v, upto_prev):
                rd = len(remnant_neighbor_ids(v, upto_prev))
                measure_inputs.append({**tree_inputs[v], "value": (rd, rd)})
            else:
                measure_inputs.append({**tree_inputs[v], "value": (0, 0)})
        measure = net.run(
            lambda: TreeAggregate(combine=_tuple_combine),
            inputs=measure_inputs,
            name=f"{name_prefix}-measure-{level}",
        )
        total_deg, max_deg = measure.outputs[danner.leader_vertex]
        rem_edges = total_deg // 2
        rem_vertices = [v for v in range(n) if in_remnant(v, upto_prev)]

        base_case = (
            rem_edges <= base_edge_factor * n
            or max_deg <= small_degree_threshold
            or level == max_levels - 1
        )
        if not rem_vertices:
            reports.append(LevelReport(level, 0, 0, 0, 0, 0.0, 0, 0, True))
            break

        if base_case:
            active = [
                remnant_neighbor_ids(v, upto_prev) if in_remnant(v, upto_prev)
                else frozenset()
                for v in range(n)
            ]
            stage = net.run(
                lambda: JohanssonListColoring(),
                inputs=[
                    {
                        "active": active[v],
                        "palette": frozenset(palettes[v]),
                        "participate": in_remnant(v, upto_prev),
                    }
                    for v in range(n)
                ],
                name=f"{name_prefix}-base-{level}",
            )
            colored_now = 0
            for v, out in enumerate(stage.outputs):
                if out and out.get("color") is not None:
                    colors[v] = out["color"]
                    colored_now += 1
                elif out and out.get("deferred"):
                    raise ProtocolError(
                        "deferral in the base case: (deg+1)-list invariant "
                        "broken"
                    )
            reports.append(LevelReport(
                level, len(rem_vertices), rem_edges, max_deg, 0, 0.0,
                colored_now, 0, True,
            ))
            break

        # -- partition level -------------------------------------------------
        q = P.level_q(n, max_deg)
        k = P.level_k(max_deg)
        bits = share_random_bits(
            net, danner, bits_one_level, name=f"{name_prefix}-bits-{level}"
        )
        total_bits += bits_one_level
        hashes = P.derive_level_hashes(
            bits, 0, n, id_space, independence_constant
        )
        levels_info.append((hashes, q, k))

        participates = []
        active_sets = []
        part_palettes = []
        for v in range(n):
            part = (
                P.member_part(hashes, values[v], q, k)
                if (in_remnant(v, upto_prev) and not deferred[v])
                else P.L_PART
            )
            if part == P.L_PART:
                participates.append(False)
                active_sets.append(frozenset())
                part_palettes.append(frozenset())
                continue
            same_part = set()
            for u_id in net.knowledge[v].neighbor_ids:
                uval = u_id.value
                if not hash_remnant(uval, upto_prev):
                    continue
                if u_id in extras[v]:
                    continue
                if P.member_part(hashes, uval, q, k) == part:
                    same_part.add(u_id)
            participates.append(True)
            active_sets.append(frozenset(same_part))
            part_palettes.append(
                P.palette_in_part(hashes, palettes[v], part, k)
            )
        stage = net.run(
            lambda: JohanssonListColoring(),
            inputs=[
                {
                    "active": active_sets[v],
                    "palette": part_palettes[v],
                    "participate": participates[v],
                }
                for v in range(n)
            ],
            name=f"{name_prefix}-color-{level}",
        )
        colored_now = 0
        deferred_now = 0
        notify_inputs = []
        for v, out in enumerate(stage.outputs):
            role = "idle"
            color = None
            targets: frozenset = frozenset()
            if out and out.get("color") is not None:
                colors[v] = out["color"]
                colored_now += 1
                role = "colored"
                color = colors[v]
                targets = remnant_neighbor_ids(v, level)
            elif out and out.get("deferred"):
                deferred[v] = True
                deferred_now += 1
                deferred_total += 1
                role = "deferred"
            notify_inputs.append(
                {"role": role, "color": color, "targets": tuple(sorted(
                    targets, key=lambda x: x._value))}  # noqa: SLF001
            )
        notify = net.run(
            NotifyStage,
            inputs=notify_inputs,
            name=f"{name_prefix}-notify-{level}",
        )
        for v, out in enumerate(notify.outputs):
            if colors[v] is None:
                for c in out["struck"]:
                    palettes[v].discard(c)
            for u_id in out["extras"]:
                extras[v].add(u_id)
        reports.append(LevelReport(
            level, len(rem_vertices), rem_edges, max_deg, k, q,
            colored_now, deferred_now, False,
        ))

    return Algorithm1Result(
        colors=colors,
        levels=reports,
        deferred_total=deferred_total,
        messages=net.stats.messages - msgs_before,
        rounds=net.stats.rounds - rounds_before,
        danner_edges=danner.edge_count(net),
        random_bits=total_bits,
    )
