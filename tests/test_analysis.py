"""Tests for graph analysis helpers."""

import pytest

from repro.graphs.analysis import (
    bfs_distances,
    connected_components,
    degeneracy,
    degree_histogram,
    diameter,
    eccentricity,
    is_connected,
    max_degree,
)
from repro.graphs.core import Graph
from repro.graphs.generators import (
    barbell_graph,
    complete_graph,
    connected_gnp_graph,
    cycle_graph,
    disjoint_cycles,
)


def test_bfs_distances_path(path4):
    assert bfs_distances(path4, 0) == [0, 1, 2, 3]


def test_bfs_unreachable():
    g = Graph(4, [(0, 1)])
    dist = bfs_distances(g, 0)
    assert dist[2] == -1 and dist[3] == -1


def test_connected_components_counts(cycles_graph):
    comps = connected_components(cycles_graph)
    assert len(comps) == 6


def test_is_connected(path4, cycles_graph):
    assert is_connected(path4)
    assert not is_connected(cycles_graph)


def test_empty_graph_connected():
    assert is_connected(Graph(0, []))


def test_eccentricity_cycle():
    g = cycle_graph(10)
    assert eccentricity(g, 0) == 5


def test_diameter_exact_small():
    assert diameter(cycle_graph(12)) == 6
    assert diameter(complete_graph(8)) == 1
    assert diameter(barbell_graph(5, 4)) == 7


def test_diameter_disconnected_raises(cycles_graph):
    with pytest.raises(ValueError):
        diameter(cycles_graph)


def test_diameter_large_uses_sweeps():
    g = barbell_graph(400, 10)
    # double sweep finds the true diameter of a barbell
    assert diameter(g, exact_threshold=10) == 13


def test_max_degree(star6):
    assert max_degree(star6) == 5


def test_degree_histogram(star6):
    hist = degree_histogram(star6)
    assert hist == {5: 1, 1: 5}


def test_degeneracy_values():
    assert degeneracy(complete_graph(6)) == 5
    assert degeneracy(cycle_graph(9)) == 2
    assert degeneracy(Graph(5, [])) == 0


def test_degeneracy_gnp_bounded():
    g = connected_gnp_graph(80, 0.1, seed=1)
    assert degeneracy(g) <= max_degree(g)
