"""End-to-end tests for Algorithm 1 (Theorem 3.3)."""

import pytest

from repro.congest.network import SyncNetwork
from repro.coloring.algorithm1 import run_algorithm1
from repro.coloring.baselines import run_baseline_coloring
from repro.coloring.verify import check_color_bound, check_proper_coloring
from repro.errors import ProtocolError
from repro.graphs.generators import connected_gnp_graph, power_law_graph

from tests.conftest import connected_families


@pytest.mark.parametrize("name,graph", connected_families(seed=400))
def test_proper_coloring_on_family(name, graph):
    net = SyncNetwork(graph, seed=1)
    result = run_algorithm1(net, seed=2)
    check_proper_coloring(graph, result.colors)
    check_color_bound(result.colors, graph.max_degree() + 1)


def test_colors_respect_degree_lists(gnp_medium):
    """(deg+1)-list flavor: v's color lies in {0..deg(v)}."""
    net = SyncNetwork(gnp_medium, seed=3)
    result = run_algorithm1(net, seed=4)
    for v in range(gnp_medium.n):
        assert 0 <= result.colors[v] <= gnp_medium.degree(v)


def test_power_law_workload():
    g = power_law_graph(200, attachment=4, seed=5)
    net = SyncNetwork(g, seed=6)
    result = run_algorithm1(net, seed=7)
    check_proper_coloring(g, result.colors)


def test_constant_levels(gnp_dense):
    """Lemma 3.2: O(1) recursion levels."""
    net = SyncNetwork(gnp_dense, seed=8)
    result = run_algorithm1(net, seed=9)
    assert result.num_levels <= 5


def test_level_reports_populated(gnp_dense):
    net = SyncNetwork(gnp_dense, seed=10)
    result = run_algorithm1(net, seed=11)
    assert result.levels[-1].base_case
    total = sum(r.colored for r in result.levels)
    assert total == gnp_dense.n - result.deferred_total or total == gnp_dense.n


def test_sublinear_messages_on_dense_graph():
    """The o(m) headline: messages well below the baseline on dense G."""
    g = connected_gnp_graph(400, 0.5, seed=12)     # m ~ 40k
    net = SyncNetwork(g, seed=13)
    result = run_algorithm1(net, seed=14)
    check_proper_coloring(g, result.colors)

    base_net = SyncNetwork(g, seed=15)
    run_baseline_coloring(base_net, "trial")
    assert result.messages < 0.7 * base_net.stats.messages


def test_danner_reused_not_rebuilt(gnp_medium):
    net = SyncNetwork(gnp_medium, seed=16)
    result = run_algorithm1(net, seed=17)
    danner_stages = [s for s in net.stats.stages if "danner-local" in s.name]
    assert len(danner_stages) == 1
    assert result.danner_edges > 0


def test_random_bits_accounted(gnp_medium):
    net = SyncNetwork(gnp_medium, seed=18)
    result = run_algorithm1(net, seed=19)
    # one partition level consumed => bits > 0; all levels base-case-only
    # consume none.
    partition_levels = [r for r in result.levels if not r.base_case]
    assert result.random_bits == len(partition_levels) * (
        result.random_bits // max(len(partition_levels), 1)
    )


def test_comparison_network_rejected(gnp_small):
    net = SyncNetwork(gnp_small, seed=20, comparison_based=True)
    with pytest.raises(ProtocolError):
        run_algorithm1(net, seed=21)


def test_deterministic_given_seed(gnp_small):
    r1 = run_algorithm1(SyncNetwork(gnp_small, seed=22), seed=23)
    r2 = run_algorithm1(SyncNetwork(gnp_small, seed=22), seed=23)
    assert r1.colors == r2.colors
    assert r1.messages == r2.messages


def test_seed_changes_coloring(gnp_medium):
    r1 = run_algorithm1(SyncNetwork(gnp_medium, seed=24), seed=25)
    r2 = run_algorithm1(SyncNetwork(gnp_medium, seed=26), seed=27)
    assert r1.colors != r2.colors


def test_single_vertex():
    from repro.graphs.core import Graph

    net = SyncNetwork(Graph(1, []), seed=28)
    result = run_algorithm1(net, seed=29)
    assert result.colors == [0]


def test_two_vertices():
    from repro.graphs.core import Graph

    net = SyncNetwork(Graph(2, [(0, 1)]), seed=30)
    result = run_algorithm1(net, seed=31)
    check_proper_coloring(Graph(2, [(0, 1)]), result.colors)


def test_sparse_graph_goes_straight_to_base(gnp_small):
    """m = O(n log n) graphs skip partitioning entirely."""
    net = SyncNetwork(gnp_small, seed=32)
    result = run_algorithm1(net, seed=33)
    assert result.levels[0].base_case


def test_stage_breakdown_sums(gnp_medium):
    net = SyncNetwork(gnp_medium, seed=34)
    result = run_algorithm1(net, seed=35)
    total = sum(s.messages for s in net.stats.stages)
    assert total == net.stats.messages == result.messages
