"""Chernoff–Hoeffding bounds under limited independence (paper Appendix A.1).

These implement the *numeric* versions of:

* Lemma A.1 (Schmidt–Siegel–Srinivasan): for c-wise independent Z_i in
  [0, 1] with Z = sum Z_i and mu = E[Z],
      Pr[|Z - mu| >= lam] <= 2 * (c * t / lam^2)^(c/2).

* Lemma A.2: for a sum X of n c-wise independent 0/1 variables and
  mu >= E[X],
      Pr[X >= (1 + delta) mu] <= exp(-min(c, delta^2 * mu)).

The experiment harness uses them to check that measured deviations of the
partitioning step (Lemma 3.1) stay within the analytic envelope, and the
algorithms use :func:`required_independence` to size their hash families.
"""

from __future__ import annotations

import math

from repro.errors import ReproError


def kwise_concentration_bound(c: int, t: int, lam: float) -> float:
    """Lemma A.1 bound on Pr[|Z - mu| >= lam] for c-wise independent Z_i.

    ``c`` must be an even integer >= 4 (as in the lemma); ``t`` is the
    number of summands.
    """
    if c < 4 or c % 2 != 0:
        raise ReproError("Lemma A.1 requires an even independence c >= 4")
    if lam <= 0:
        return 1.0
    bound = 2.0 * (c * t / (lam * lam)) ** (c / 2.0)
    return min(1.0, bound)


def kwise_chernoff_upper(c: int, mu: float, delta: float) -> float:
    """Lemma A.2 bound on Pr[X >= (1 + delta) mu].

    ``mu`` must satisfy mu >= E[X]; ``delta`` > 0.
    """
    if c < 1:
        raise ReproError("independence must be >= 1")
    if delta <= 0 or mu <= 0:
        return 1.0
    exponent = min(float(c), delta * delta * mu)
    return min(1.0, math.exp(-exponent))


def required_independence(n: int, constant: float = 2.0) -> int:
    """The Theta(log n)-wise independence the paper's algorithms use.

    Returns an even integer c = Theta(log n), large enough that the
    exp(-min(c, .)) term of Lemma A.2 is at most n^{-constant}.
    """
    if n < 2:
        return 4
    c = int(math.ceil(constant * math.log(n))) + 1
    if c % 2 == 1:
        c += 1
    return max(4, c)


def whp_failure_budget(n: int, constant: float = 1.0) -> float:
    """The paper's 'with high probability' budget: n^{-constant}."""
    if n < 2:
        return 0.5
    return float(n) ** (-constant)
