"""Tests for the baseline colorings (the Ω(m)-message classics)."""

import pytest

from repro.congest.network import SyncNetwork
from repro.coloring.baselines import run_baseline_coloring
from repro.coloring.verify import check_color_bound, check_proper_coloring

from tests.conftest import connected_families


@pytest.mark.parametrize("kind", ["trial", "rank-greedy"])
@pytest.mark.parametrize("name,graph", connected_families(seed=600))
def test_baselines_proper(kind, name, graph):
    net = SyncNetwork(graph, seed=1,
                      comparison_based=(kind == "rank-greedy"))
    colors, _stage = run_baseline_coloring(net, kind)
    check_proper_coloring(graph, colors)
    check_color_bound(colors, graph.max_degree() + 1)


def test_unknown_kind_rejected(gnp_small):
    net = SyncNetwork(gnp_small, seed=2)
    with pytest.raises(ValueError):
        run_baseline_coloring(net, "nope")


def test_trial_uses_theta_m_messages(gnp_medium):
    net = SyncNetwork(gnp_medium, seed=3)
    run_baseline_coloring(net, "trial")
    assert net.stats.messages >= gnp_medium.m


def test_rank_greedy_utilizes_every_edge(gnp_small):
    """The Theorem 2.10 behavior: all edges utilized."""
    net = SyncNetwork(gnp_small, seed=4, comparison_based=True)
    run_baseline_coloring(net, "rank-greedy")
    assert net.stats.utilized_count == gnp_small.m


def test_rank_greedy_message_count_exact(gnp_small):
    """Exactly one announcement per edge direction."""
    net = SyncNetwork(gnp_small, seed=5, comparison_based=True)
    run_baseline_coloring(net, "rank-greedy")
    assert net.stats.sends == 2 * gnp_small.m


def test_rank_greedy_runs_under_opaque_discipline(gnp_small):
    """It really is comparison-based: opaque IDs raise on misuse, and
    the algorithm completes without tripping the checker."""
    net = SyncNetwork(gnp_small, seed=6, comparison_based=True)
    colors, _ = run_baseline_coloring(net, "rank-greedy")
    check_proper_coloring(gnp_small, colors)
