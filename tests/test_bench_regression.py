"""Engine count-regression gate against the committed BENCH_engine.json.

Runs the n=80 slice of the reference sweep (benchmarks/check_regression
does the full matrix from the command line) and requires bit-identical
``messages``/``rounds`` per shared cell — the invariant every engine
optimization in this repo must preserve.  Wall-clock is advisory there
and unasserted here.
"""

import os
import sys

import pytest

sys.path.insert(
    0,
    os.path.join(os.path.dirname(os.path.abspath(__file__)),
                 os.pardir, "benchmarks"),
)

import check_regression  # noqa: E402

pytestmark = pytest.mark.slow


def test_subset_counts_match_committed_baseline():
    baseline = check_regression.load_baseline()
    fresh = check_regression.fresh_payload(workers=2, sizes=(80,))
    result = check_regression.compare(baseline, fresh)
    # Every spec contributes its n=80 column: 2*4*3 + 1*4*3 sync cells
    # plus the async Algorithm 1 column's 1*1*3.
    assert result["shared"] == 39
    assert not result["mismatches"], result["mismatches"][:10]
