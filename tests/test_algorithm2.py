"""End-to-end tests for Algorithm 2 ((1+eps)Delta coloring, Theorem 3.8)."""

import pytest

from repro.congest.network import SyncNetwork
from repro.coloring.algorithm2 import phase_budget, run_algorithm2
from repro.coloring.verify import check_color_bound, check_proper_coloring
from repro.errors import ProtocolError
from repro.graphs.generators import connected_gnp_graph, random_regular_graph

from tests.conftest import connected_families


@pytest.mark.parametrize("name,graph", connected_families(seed=500))
def test_proper_on_family(name, graph):
    net = SyncNetwork(graph, seed=1)
    result = run_algorithm2(net, epsilon=0.5, seed=2)
    check_proper_coloring(graph, result.colors)
    check_color_bound(result.colors, result.palette_size)


def test_palette_size_formula(gnp_medium):
    net = SyncNetwork(gnp_medium, seed=3)
    result = run_algorithm2(net, epsilon=0.25, seed=4)
    delta = gnp_medium.max_degree()
    assert result.max_degree == delta
    assert result.palette_size == max(delta + 1, int((1.25) * delta) + 1)


def test_epsilon_must_be_positive(gnp_small):
    net = SyncNetwork(gnp_small, seed=5)
    with pytest.raises(ProtocolError):
        run_algorithm2(net, epsilon=0.0)


def test_comparison_network_rejected(gnp_small):
    net = SyncNetwork(gnp_small, seed=6, comparison_based=True)
    with pytest.raises(ProtocolError):
        run_algorithm2(net, epsilon=0.5)


def test_phase_budget_scaling():
    assert phase_budget(1000, 0.1) > phase_budget(1000, 1.0)
    assert phase_budget(10_000, 0.5) > phase_budget(100, 0.5)


def test_query_messages_small():
    """Lemma 3.7's consequence: query traffic is tiny compared to m."""
    g = random_regular_graph(200, 30, seed=7)
    net = SyncNetwork(g, seed=8)
    result = run_algorithm2(net, epsilon=0.5, seed=9)
    check_proper_coloring(g, result.colors)
    # queries+replies stay well below one message per edge
    assert result.query_messages < g.m


def test_total_messages_scale_with_n_not_m():
    """Õ(n/eps^2): denser graphs should NOT cost proportionally more."""
    sparse = connected_gnp_graph(150, 0.1, seed=10)
    dense = connected_gnp_graph(150, 0.5, seed=11)
    msgs = {}
    for tag, g in (("sparse", sparse), ("dense", dense)):
        net = SyncNetwork(g, seed=12)
        msgs[tag] = run_algorithm2(net, epsilon=0.5, seed=13).messages
    # m grew ~5x; messages should grow by far less than 2x
    assert msgs["dense"] < 2.0 * msgs["sparse"]


def test_smaller_epsilon_more_phases(gnp_small):
    r_loose = run_algorithm2(SyncNetwork(gnp_small, seed=14),
                             epsilon=1.0, seed=15)
    r_tight = run_algorithm2(SyncNetwork(gnp_small, seed=16),
                             epsilon=0.2, seed=17)
    assert r_tight.phases > r_loose.phases
    check_proper_coloring(gnp_small, r_tight.colors)


def test_num_colors_within_palette(gnp_medium):
    net = SyncNetwork(gnp_medium, seed=18)
    result = run_algorithm2(net, epsilon=0.5, seed=19)
    used = {c for c in result.colors}
    assert max(used) < result.palette_size


def test_deterministic_given_seed(gnp_small):
    r1 = run_algorithm2(SyncNetwork(gnp_small, seed=20), epsilon=0.5, seed=21)
    r2 = run_algorithm2(SyncNetwork(gnp_small, seed=20), epsilon=0.5, seed=21)
    assert r1.colors == r2.colors


def test_broadcast_bits_match_phase_budget(gnp_small):
    net = SyncNetwork(gnp_small, seed=22)
    result = run_algorithm2(net, epsilon=0.5, seed=23)
    assert result.broadcast_bits % result.phases == 0


def test_phase_exhaustion_falls_back_to_proper_coloring():
    """Regression: a node that fails every hashed phase (found by
    hypothesis: n=19, p=0.598, eps=0.281, seed=41081 leaves vertex 0
    uncolored) must not publish ``color=None`` — the deterministic
    fallback colors it properly within the palette.  Pinned here so the
    case is covered without the hypothesis example database."""
    g = connected_gnp_graph(19, 0.59765625, seed=41081)
    net = SyncNetwork(g, seed=41081)
    result = run_algorithm2(net, epsilon=0.28125, seed=41082)
    assert all(c is not None for c in result.colors)
    check_proper_coloring(g, result.colors)
    check_color_bound(result.colors, result.palette_size)


def test_tight_epsilon_always_terminates_properly():
    """Small eps shrinks the palette toward Delta+1, making per-phase
    success rare and stragglers common — every run must still end in a
    proper in-palette coloring (the fallback makes Algorithm 2 Las
    Vegas, not just whp)."""
    for seed in range(8):
        g = connected_gnp_graph(24, 0.5, seed=900 + seed)
        net = SyncNetwork(g, seed=900 + seed)
        result = run_algorithm2(net, epsilon=0.2, seed=901 + seed)
        assert all(c is not None for c in result.colors)
        check_proper_coloring(g, result.colors)
        check_color_bound(result.colors, result.palette_size)
