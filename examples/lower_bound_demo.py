#!/usr/bin/env python3
"""The lower-bound machinery, live: why comparison-based algorithms
cannot break symmetry with o(m) messages (paper Section 2).

Walks through the Figure 2 construction on a small instance:

1. build the base graph G ∪ G′ and a crossed graph G_{e,e′} with the
   carefully shifted ID assignment ψ_{e,e′};
2. run a *silent* comparison-based coloring: correct on the base graph,
   and — because its executions on base and crossed graphs are decoded-
   identical — monochromatic exactly on the new edge {y, y′} (Lemma 2.9);
3. same story for MIS with the witness pair {x′, z} (Lemma 2.13);
4. sweep a probe budget to trace the messages-vs-correctness curve that
   Lemma 2.11 and Yao's lemma turn into the Ω(n²) bound.

Run:  python examples/lower_bound_demo.py
"""

from repro.lowerbounds.algorithms import (
    ProbedCountColoring,
    SilentCountColoring,
    SilentExtremaMIS,
)
from repro.lowerbounds.construction import (
    crossing_instance,
    verify_id_properties,
)
from repro.lowerbounds.crossing_experiment import (
    dichotomy_experiment,
    run_crossing_trial,
    summarize_records,
)


def main() -> None:
    t = 6
    inst = crossing_instance(t, y_index=2, z_index=4, x_index=1)
    print(f"family member F(t={t}): base graph n={inst.base.n}, "
          f"m={inst.base.m}; crossing e={inst.e}, e'={inst.e_prime}")
    print(f"ID-assignment properties (paper observations i-iii): "
          f"{verify_id_properties(inst)}")

    print("\n-- Lemma 2.9 (coloring) --")
    rec = run_crossing_trial(inst, SilentCountColoring, "coloring", seed=1)
    print(f"silent coloring: messages={rec.base_messages}, "
          f"pair utilized={rec.pair_utilized}")
    print(f"  correct on base graph:    {rec.correct_on_base}")
    print(f"  executions similar:       {rec.executions_similar} "
          f"(Definition 2.2, decoded traces)")
    print(f"  correct on crossed graph: {rec.correct_on_crossed} "
          f"— monochromatic edge {rec.violation_witness} "
          f"(= {{y, y'}} = {{{inst.y}, {inst.y_prime}}})")

    print("\n-- Lemma 2.13 (MIS) --")
    rec = run_crossing_trial(inst, SilentExtremaMIS, "mis", seed=2)
    print(f"silent MIS: correct on base={rec.correct_on_base}, "
          f"crossed={rec.correct_on_crossed}, "
          f"witness={rec.violation_witness} "
          f"(= {{x', z}} = {{{inst.x_prime}, {inst.z}}})")

    print("\n-- Lemma 2.11: messages vs correctness over the family --")
    print(f"{'probe budget':>12} {'mean messages':>14} "
          f"{'correct fraction':>17}")
    for k in (0, 2, 4, 8, 16):
        recs = dichotomy_experiment(
            t, lambda k=k: ProbedCountColoring(k), "coloring",
            sample=20, seed=3,
        )
        s = summarize_records(recs)
        assert s["dichotomy_holds"]
        print(f"{k:>12} {s['mean_messages']:>14.0f} "
              f"{s['crossed_correct_fraction']:>17.2f}")
    print("\nthe curve is the theorem: comparison-based correctness on "
          "the family costs Θ(n²) utilized edges (Theorems 2.12/2.16).")


if __name__ == "__main__":
    main()
