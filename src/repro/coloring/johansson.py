"""Johansson's randomized (deg+1)-list coloring [40].

The workhorse of Algorithm 1 (Steps 3 and 5): every still-uncolored node
repeatedly trials a uniform color from its current list; a trial sticks
iff no *undecided active neighbor* trialed the same color in the same
phase; decided colors are struck from neighboring lists.  With lists of
size >= (active degree + 1) a constant fraction of nodes succeeds per
phase, so O(log n) phases suffice whp.

The implementation runs in *lockstep by counting*, not by round parity:
each phase has a trial subphase and a resolve subphase, and a node enters
the next phase only after hearing a resolve from every neighbor it still
considers undecided.  Neighbors therefore never drift more than one phase
apart, and the protocol is insensitive to message delays — the same class
runs unchanged under link congestion and under the asynchronous engine /
alpha-synchronizer (Theorem 3.4).

Inputs per node (all locally derivable in Algorithm 1 from KT-1 plus the
shared random string):

* ``active``  — frozenset of neighbor IDs in this node's active subgraph
  (e.g. the same-B_i neighbors);
* ``palette`` — the node's current color list;
* ``participate`` — False for bystanders (they output None immediately).

Output: ``{"color": int}`` or ``{"deferred": True}`` — deferral happens
only if a node's list runs empty while neighbors are undecided, which the
partition properties rule out whp (tests assert it never fires on valid
inputs; Algorithm 1 folds any deferred node into the next-level remnant).
"""

from __future__ import annotations

from typing import Optional

from repro.congest.node import Context, NodeAlgorithm
from repro.errors import ProtocolError


class JohanssonListColoring(NodeAlgorithm):
    """One run of list coloring inside an active subgraph."""

    passive_when_idle = True

    def setup(self, ctx: Context) -> None:
        state = ctx.input or {}
        self.participate = state.get("participate", True)
        self.palette: set[int] = set(state.get("palette", ()))
        active = state.get("active")
        if active is None:
            active = frozenset(ctx.neighbor_ids)
        self.undecided = {u for u in ctx.neighbor_ids if u in active}
        self.phase = 0
        self.trial: Optional[int] = None
        self.resolved = True        # no resolve owed for a not-yet-begun phase
        self.color: Optional[int] = None
        self.deferred = False
        self.trials_seen: dict[int, dict] = {}
        self.resolves_seen: dict[int, dict] = {}

    # -- local decisions ---------------------------------------------------

    def _publish(self, ctx: Context) -> None:
        if not self.participate:
            ctx.done(None)
        elif self.deferred:
            ctx.done({"deferred": True})
        elif self.color is not None:
            ctx.done({"color": self.color})
        else:
            ctx.done(None)

    def _decided(self) -> bool:
        return self.color is not None or self.deferred

    def _begin_phase(self, ctx: Context) -> None:
        """Enter the current phase: trial, decide locally, or defer."""
        if len(self.palette) <= len(self.undecided):
            # The (deg+1)-list invariant |list| >= undecided + 1 has been
            # violated upstream (a whp-impossible failure of Lemma 3.1's
            # property (ii)).  Without it, progress is no longer
            # guaranteed — e.g. two neighbors sharing one singleton list
            # would conflict forever — so defer to the caller's remnant.
            self.deferred = True
            ctx.broadcast(self.undecided, "rd", self.phase)
            self._publish(ctx)
            return
        if not self.undecided:
            self.color = min(self.palette)
            self._publish(ctx)
            return
        choices = sorted(self.palette)
        self.trial = choices[ctx.rng.randrange(len(choices))]
        self.resolved = False
        ctx.broadcast(self.undecided, "trial", self.phase, self.trial)

    def _try_resolve(self, ctx: Context) -> bool:
        """Send this phase's resolve once every expected trial arrived.

        A deferring neighbor sends a resolve instead of a trial; either
        counts toward completeness.
        """
        if self.resolved or self.trial is None:
            return False
        p = self.phase
        trials = self.trials_seen.get(p, {})
        resolves = self.resolves_seen.get(p, {})
        if not all(u in trials or u in resolves for u in self.undecided):
            return False
        conflict = any(
            trials.get(u) == self.trial for u in self.undecided
        )
        self.resolved = True
        if conflict:
            ctx.broadcast(self.undecided, "rf", p)
        else:
            self.color = self.trial
            ctx.broadcast(self.undecided, "rc", p, self.trial)
            self._publish(ctx)
        return True

    def _try_advance(self, ctx: Context) -> bool:
        """Move to the next phase once every neighbor's resolve arrived."""
        if not self.resolved or self._decided():
            return False
        p = self.phase
        resolves = self.resolves_seen.get(p, {})
        if not all(u in resolves for u in self.undecided):
            return False
        for u in list(self.undecided):
            kind, value = resolves[u]
            if kind == "colored":
                self.palette.discard(value)
                self.undecided.discard(u)
            elif kind == "deferred":
                self.undecided.discard(u)
        self.trials_seen.pop(p, None)
        self.resolves_seen.pop(p, None)
        self.phase = p + 1
        self.trial = None
        return True

    def _pump(self, ctx: Context) -> None:
        """Run the state machine to a fixed point on buffered messages."""
        while not self._decided():
            if self._try_resolve(ctx):
                continue
            if self._try_advance(ctx):
                self._begin_phase(ctx)
                continue
            break

    # -- protocol ------------------------------------------------------------

    def on_round(self, ctx: Context, inbox) -> None:
        if not self.participate:
            if inbox:
                raise ProtocolError("bystander received a coloring message")
            self._publish(ctx)
            return
        for msg in inbox:
            if msg.tag == "trial":
                p, c = msg.fields
                self.trials_seen.setdefault(p, {})[msg.sender_id] = c
            elif msg.tag == "rf":
                (p,) = msg.fields
                self.resolves_seen.setdefault(p, {})[msg.sender_id] = (
                    "failed", None,
                )
            elif msg.tag == "rc":
                p, c = msg.fields
                self.resolves_seen.setdefault(p, {})[msg.sender_id] = (
                    "colored", c,
                )
            elif msg.tag == "rd":
                (p,) = msg.fields
                self.resolves_seen.setdefault(p, {})[msg.sender_id] = (
                    "deferred", None,
                )
        if ctx.round == 0:
            # Participants publish only on *decision* (color or defer):
            # an undecided node stays engine-unfinished, so a silence
            # cascade under faults is a starved casualty, never a stale
            # default output.
            self._begin_phase(ctx)
        if not self._decided():
            self._pump(ctx)


def johansson_color(net, active_sets, palettes, participate=None,
                    name: str = "johansson"):
    """Driver: run one list-coloring stage.

    ``active_sets[v]`` / ``palettes[v]`` follow the class docstring;
    ``participate`` defaults to all-True.  Returns the StageResult.
    """
    n = net.graph.n
    if participate is None:
        participate = [True] * n
    inputs = [
        {
            "active": active_sets[v],
            "palette": frozenset(palettes[v]),
            "participate": participate[v],
        }
        for v in range(n)
    ]
    return net.run(JohanssonListColoring, inputs=inputs, name=name)
