"""Comparison-based probe algorithms for the dichotomy experiments.

The lower-bound proofs show that a comparison-based algorithm either
*utilizes* one edge of every crossable pair (e, e′) or computes the same
decoded output on the base and crossed graphs — and the latter is wrong
on G_{e,e′} (monochromatic {y, y′} for coloring, Lemma 2.9; adjacent MIS
pair {x′, z} for MIS, Lemma 2.13).  These algorithms make that dichotomy
*measurable*:

* the **silent** variants send zero messages, are correct on the base
  graph family, and reproduce exactly the failure the lemmas predict on
  every crossed graph;
* the **probed** variants additionally verify a budget of k randomly
  sampled incident edges, repairing the violation exactly when a probe
  hits a crossing edge — sweeping k traces out the messages-vs-
  correctness trade-off that Lemma 2.11 and Yao's-lemma Theorem 2.12
  formalize.

All of them only *compare* IDs (count smaller neighbors, compare
endpoint IDs for tie-breaking) — they run under ``OpaqueId`` discipline.
They are experiment gadgets tailored to the family F: the probed
variants' repair rules exploit the family's structure and are not
general-purpose algorithms.
"""

from __future__ import annotations

from repro.congest.node import Context, NodeAlgorithm


def _position_color(ctx: Context) -> int:
    """A pure comparison-based color from the ID-order signature.

    0 if every neighbor has a larger ID, 1 if every neighbor has a
    smaller ID, 2 if mixed.  On the base family: X and X′ get 0 (their Y
    neighbors sit above), Z and Z′ get 1 (their Y neighbors sit below),
    Y and Y′ get 2 — proper.  On a crossed graph both y and y′ still see
    mixed neighborhoods (the ψ shifts guarantee the crossing preserves
    every local comparison), so {y, y′} goes monochromatic.
    """
    me = ctx.my_id
    smaller = sum(1 for u in ctx.neighbor_ids if u < me)
    larger = len(ctx.neighbor_ids) - smaller
    if smaller == 0:
        return 0
    if larger == 0:
        return 1
    return 2


class SilentCountColoring(NodeAlgorithm):
    """color(v) = ID-order signature of the neighborhood; zero messages.

    Correct on every base graph of the family; on every crossed graph it
    makes {y, y′} monochromatic — the Lemma 2.9 witness.
    """

    passive_when_idle = True

    def on_round(self, ctx: Context, inbox) -> None:
        ctx.done({"color": _position_color(ctx)})


class SilentExtremaMIS(NodeAlgorithm):
    """join iff my ID is a local extremum; zero messages.

    On the base family this yields the valid MIS X ∪ Z ∪ X′ ∪ Z′ (one of
    the two outcomes Lemma 2.13 allows); on every crossed graph both x′
    and z join while being adjacent — the Lemma 2.13 witness.
    """

    passive_when_idle = True

    def on_round(self, ctx: Context, inbox) -> None:
        me = ctx.my_id
        nbrs = ctx.neighbor_ids
        local_min = all(u > me for u in nbrs)
        local_max = all(u < me for u in nbrs)
        ctx.done({"in_mis": local_min or local_max})


class ProbedCountColoring(NodeAlgorithm):
    """Silent count coloring plus k random edge probes.

    Each node samples up to k incident edges, announces its candidate
    color across them, and answers any probe with its own candidate.  If
    a probe reveals an equal-color neighbor, the smaller-ID endpoint
    recolors to 3 (the signature colors are 0-2, so 3 is conflict-free on
    the family F; requires t >= 2 for it to fit the Δ+1 palette).
    Utilized edges ≈ the probed ones, so correctness on a crossed
    instance ≈ Pr[some probe hits a crossing edge].
    """

    passive_when_idle = True

    def __init__(self, budget: int):
        self.budget = budget

    def setup(self, ctx: Context) -> None:
        self.color = None

    def _ensure_color(self, ctx: Context) -> None:
        if self.color is None:
            self.color = _position_color(ctx)

    def on_round(self, ctx: Context, inbox) -> None:
        self._ensure_color(ctx)
        if ctx.round == 0:
            nbrs = list(ctx.neighbor_ids)
            ctx.rng.shuffle(nbrs)
            for u in nbrs[: self.budget]:
                ctx.send(u, "probe", self.color)
        for msg in inbox:
            (their_color,) = msg.fields
            if msg.tag == "probe":
                ctx.send(msg.sender_id, "answer", self.color)
            if their_color == self.color and msg.sender_id > ctx.my_id:
                # Conflict detected: the smaller-ID endpoint repairs.
                self.color = 3
        ctx.done({"color": self.color})


class ProbedExtremaMIS(NodeAlgorithm):
    """Silent extrema MIS plus k random edge probes.

    A probe carries the sender's tentative membership; if both endpoints
    of a probed edge are in, the smaller-ID endpoint defects (it stays
    dominated by the larger one, preserving maximality on the family F).
    """

    passive_when_idle = True

    def __init__(self, budget: int):
        self.budget = budget

    def setup(self, ctx: Context) -> None:
        self.in_mis = False

    def _decide(self, ctx: Context) -> None:
        me = ctx.my_id
        nbrs = ctx.neighbor_ids
        self.in_mis = all(u > me for u in nbrs) or all(u < me for u in nbrs)

    def on_round(self, ctx: Context, inbox) -> None:
        if ctx.round == 0:
            self._decide(ctx)
            nbrs = list(ctx.neighbor_ids)
            ctx.rng.shuffle(nbrs)
            for u in nbrs[: self.budget]:
                ctx.send(u, "probe", self.in_mis)
        for msg in inbox:
            (their_state,) = msg.fields
            if msg.tag == "probe":
                ctx.send(msg.sender_id, "answer", self.in_mis)
            if their_state and self.in_mis and msg.sender_id > ctx.my_id:
                self.in_mis = False
        ctx.done({"in_mis": self.in_mis})
