"""The danner substitute (Gmyr–Pandurangan [15], Theorem 1.1 interface).

A *danner* is a spanning subgraph H of G with Õ(min(m, n^{1+delta}))
edges and diameter Õ(D + n^{1-delta}), constructible with
Õ(min(m, n^{1+delta})) messages.  The paper uses it (at delta = 1/2) to
elect a leader and broadcast a Theta(polylog n)-bit random string with
Õ(n^1.5) messages in Õ(D + sqrt n) rounds (Corollary 1.2).

Our construction (documented as a substitution in DESIGN.md §1.3):

1. *Local sparsification* — a node of degree <= tau = n^delta keeps all
   its edges; a heavier node keeps its edges to *landmark* neighbors,
   where landmark status is a fixed hash of the node ID that every
   neighbor evaluates locally (KT-1 + non-comparison hashing; zero
   messages).  One KEEP notification per kept edge makes membership
   known at both endpoints.  Whp every heavy node has ~log n landmark
   neighbors, and the kept-edge count is Õ(n^{1+delta} + m/n^delta).
2. *Connectivity repair* — the kept subgraph H0 can miss bridges (no
   local sampling can find a bridge between two hubs), so we elect
   per-component leaders by flooding H0, count nodes by convergecast,
   and if the count falls short run sketch-Boruvka phases over the
   component trees; the discovered outgoing edges join H.  On the
   benchmark families H0 is almost always already connected.

The end product mirrors Theorem 1.1's interface: per-node active edge
sets, a leader, and a BFS-ish tree for broadcast/upcast.
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass
from typing import Optional

from repro.congest.ids import NodeId, OpaqueId
from repro.congest.node import ColumnarStage, Context, NodeAlgorithm
from repro.errors import ConvergenceError
from repro.substrates.boruvka import ForestState, run_boruvka
from repro.substrates.flooding import (
    AdoptParents,
    FloodLeaderElect,
    ShareRandomBits,
    TreeAggregate,
)
from repro.util.bitstrings import BitString


def is_landmark(id_value: int, seed, probability: float) -> bool:
    """Landmark status: a fixed hash of the ID, evaluable by any neighbor."""
    h = zlib.crc32(f"lm:{id_value}:{seed}".encode()) & 0xFFFFFFFF
    return h < probability * (1 << 32)


class DannerLocalStage(ColumnarStage, NodeAlgorithm):
    """Local sparsification + one KEEP notification per kept edge."""

    passive_when_idle = True

    def __init__(self, tau: int, probability: float, seed):
        self.tau = tau
        self.probability = probability
        self.seed = seed

    def setup(self, ctx: Context) -> None:
        self.active: set[NodeId] = set()

    def on_round(self, ctx: Context, inbox) -> None:
        if ctx.round == 0:
            if ctx.degree <= self.tau:
                kept = list(ctx.neighbor_ids)
            else:
                kept = [
                    u for u in ctx.neighbor_ids
                    if is_landmark(u.value, self.seed, self.probability)
                ]
                if not kept:
                    # Whp-impossible fallback: keep everything rather than
                    # risk isolating this node in H0.
                    kept = list(ctx.neighbor_ids)
            self.active.update(kept)
            ctx.broadcast(kept, "keep")
        for msg in inbox:
            self.active.add(msg.sender_id)
        ctx.done(frozenset(self.active))

    # -- columnar engine (docs/columnar.md) ----------------------------------

    @classmethod
    def build_columnar_kernel(cls, net, algorithms, contexts):
        from repro.congest.columnar import full_graph, get_numpy

        np_ = get_numpy()
        if np_ is None:
            return None
        n = net._n
        if n and isinstance(net._ids[0], OpaqueId):
            # The scalar stage evaluates ``u.value``, which a
            # comparison-based network must reject — keep that path.
            return None
        first = algorithms[0]
        if any(
            (a.tau, a.probability, a.seed)
            != (first.tau, first.probability, first.seed)
            for a in algorithms
        ):
            return None
        graph = full_graph(np_, net)
        if graph is None:
            return None
        return _DannerLocalKernel(np_, net, graph, first, contexts)


class _DannerLocalKernel:
    """One vectorized KEEP wave.

    The landmark hash is a pure function of the target's ID, so the
    kernel evaluates it once per *vertex* instead of once per directed
    edge (the scalar stage re-hashes each neighbor at every observer).
    Message multiset and outputs are unchanged: one no-field KEEP per
    kept edge, active sets = kept ∪ keepers.
    """

    def __init__(self, np_, net, graph, alg, contexts):
        self.np = np_
        self.net = net
        self.graph = graph
        self.contexts = contexts
        self.kept_ids: list = []
        n = net._n
        landmark = np_.fromiter(
            (
                is_landmark(
                    net.assignment.value_of(v), alg.seed, alg.probability
                )
                for v in range(n)
            ),
            dtype=bool, count=n,
        )
        deg = graph.indptr[1:] - graph.indptr[:-1]
        small = deg <= alg.tau
        keep = small[graph.esrc] | landmark[graph.edst]
        # Whp-impossible fallback (mirrors the scalar stage): a heavy
        # node with no landmark neighbor keeps everything.
        kept_deg = np_.bincount(graph.esrc[keep], minlength=n)
        keep |= ((~small) & (kept_deg == 0))[graph.esrc]
        self.keep_eids = np_.flatnonzero(keep)

    def begin(self):
        from repro.congest.columnar import SendBatch

        np_ = self.np
        net = self.net
        graph = self.graph
        contexts = self.contexts
        ids = net._ids
        eids = self.keep_eids
        n = net._n
        # Round-0 provisional outputs: the kept sets themselves.
        bounds = np_.searchsorted(graph.esrc[eids], np_.arange(n + 1))
        dst = graph.edst[eids].tolist()
        kept_ids = self.kept_ids
        for v in range(n):
            lo, hi = bounds[v], bounds[v + 1]
            kept = frozenset(ids[u] for u in dst[lo:hi])
            kept_ids.append(kept)
            contexts[v].done(kept)
        if not len(eids):
            return []
        return [SendBatch(
            "keep", 0, eids,
            np_.zeros(len(eids), dtype=np_.int64),
            np_.ones(len(eids), dtype=np_.int64),  # empty payload: 1 word
        )]

    def deliver(self, arrivals):
        np_ = self.np
        esrc = self.graph.esrc
        edst = self.graph.edst
        ids = self.net._ids
        contexts = self.contexts
        kept_ids = self.kept_ids
        eids = np_.concatenate([
            b.eids if sub is None else b.eids[sub] for b, sub in arrivals
        ])
        order = np_.argsort(edst[eids], kind="stable")
        rs = edst[eids][order]
        senders = esrc[eids][order].tolist()
        bounds = np_.flatnonzero(
            np_.concatenate(([True], rs[1:] != rs[:-1]))
        ).tolist()
        bounds.append(len(senders))
        receivers = rs[bounds[:-1]].tolist()
        for i, v in enumerate(receivers):
            lo, hi = bounds[i], bounds[i + 1]
            contexts[v].done(
                kept_ids[v] | frozenset(ids[s] for s in senders[lo:hi])
            )
        return []


@dataclass
class DannerResult:
    """Theorem 1.1 interface: the danner H plus leader and tree."""

    active: list[frozenset[NodeId]]      # per-vertex H-neighbors
    leader_id: NodeId
    leader_vertex: int
    parents: list[Optional[NodeId]]
    children: list[frozenset[NodeId]]
    repair_phases: int

    def edge_list(self, net) -> list[tuple[int, int]]:
        edges = set()
        for v, nbrs in enumerate(self.active):
            for nid in nbrs:
                u = net.vertex_of(nid)
                edges.add((min(u, v), max(u, v)))
        return sorted(edges)

    def edge_count(self, net) -> int:
        return len(self.edge_list(net))

    def tree_inputs(self) -> list[dict]:
        return [
            {"parent": self.parents[v], "children": self.children[v]}
            for v in range(len(self.parents))
        ]


def _elect_and_count(net, active, name):
    flood = net.run(FloodLeaderElect, inputs=active, name=f"{name}-flood")
    parents = [o["parent"] for o in flood.outputs]
    leaders = [o["leader"] for o in flood.outputs]
    adopt = net.run(
        AdoptParents,
        inputs=[{"parent": p} for p in parents],
        name=f"{name}-adopt",
    )
    children = [o["children"] for o in adopt.outputs]
    count = net.run(
        TreeAggregate,
        inputs=[
            {"parent": parents[v], "children": children[v], "value": 1}
            for v in range(net.graph.n)
        ],
        name=f"{name}-count",
    )
    return leaders, parents, children, count.outputs


def build_danner(
    net,
    delta: float = 0.5,
    seed=0,
    landmark_constant: float = 1.0,
    name_prefix: str = "danner",
    max_repairs: int = 40,
) -> DannerResult:
    """Build a danner of the (connected) underlying graph.

    delta trades messages for rounds exactly as in Theorem 1.1; the paper
    always uses delta = 1/2.
    """
    n = net.graph.n
    tau = max(1, math.ceil(n ** delta))
    probability = min(1.0, landmark_constant * math.log(max(n, 2)) / tau)
    local = net.run(
        lambda: DannerLocalStage(tau, probability, seed),
        name=f"{name_prefix}-local",
    )
    active: list[set[NodeId]] = [set(s) for s in local.outputs]

    repair_phases = 0
    for attempt in range(max_repairs):
        leaders, parents, children, counts = _elect_and_count(
            net, [frozenset(s) for s in active], f"{name_prefix}-elect{attempt}"
        )
        # The leader's component count reaches every node of its component;
        # a full count means H is spanning-connected.
        if all(c == n for c in counts):
            leader_id = leaders[0]
            return DannerResult(
                active=[frozenset(s) for s in active],
                leader_id=leader_id,
                leader_vertex=net.vertex_of(leader_id),
                parents=parents,
                children=children,
                repair_phases=repair_phases,
            )
        # Repair connectivity: Boruvka over the component trees discovers
        # outgoing (bridge) edges of each component; add them to H.
        forest = ForestState(parents=parents, children=list(children))
        result = run_boruvka(
            net, forest, seed=(seed, "repair", attempt),
            name_prefix=f"{name_prefix}-repair{attempt}",
        )
        repair_phases += result.phases
        for u, v in result.new_edges:
            active[u].add(net.id_of(v))
            active[v].add(net.id_of(u))
        if not result.new_edges:
            raise ConvergenceError(
                "danner repair found no bridges; is the graph connected?"
            )
    raise ConvergenceError("danner repair did not converge")


def share_random_bits(
    net,
    danner: DannerResult,
    nbits: int,
    name: str = "share-bits",
) -> BitString:
    """Corollary 1.2: the leader generates and broadcasts ``nbits`` bits.

    Returns the shared BitString (identical at every node; the stage
    output list is checked for agreement by tests).
    """
    stage = net.run(
        lambda: ShareRandomBits(nbits),
        inputs=danner.tree_inputs(),
        name=name,
    )
    return stage.outputs[danner.leader_vertex]
