"""Random bit strings and their CONGEST word accounting.

Algorithm 1 broadcasts a string R of O(log^2 n) random bits; Algorithm 2
broadcasts (C / eps) log^3 n bits.  Nodes then derive limited-independence
hash functions locally from R.  A BitString knows how many O(log n)-bit
CONGEST words it occupies so the broadcast substrate can charge the right
number of messages.

Perf note: bit validation runs only when a BitString is built from
caller-supplied bits.  Derived strings (slices, concatenations,
``from_int``) are wrapped without re-validating — re-checking every bit
of every chunk made the pipelined broadcast relay quadratic in validation
work.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

_VALID_BITS = frozenset((0, 1))


class BitString:
    """An immutable sequence of bits with CONGEST word accounting."""

    __slots__ = ("bits", "_hash")

    def __init__(self, bits: Iterable[int]):
        bits = tuple(bits)
        if not _VALID_BITS.issuperset(bits):
            raise ValueError("BitString entries must be 0 or 1")
        self.bits = bits
        self._hash = None

    @classmethod
    def _wrap(cls, bits: tuple) -> "BitString":
        """Wrap an already-validated bit tuple (internal fast path)."""
        obj = object.__new__(cls)
        obj.bits = bits
        obj._hash = None
        return obj

    def __len__(self) -> int:
        return len(self.bits)

    def __iter__(self) -> Iterator[int]:
        return iter(self.bits)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return BitString._wrap(self.bits[index])
        return self.bits[index]

    def __eq__(self, other) -> bool:
        if isinstance(other, BitString):
            return self.bits == other.bits
        return NotImplemented

    def __hash__(self) -> int:
        h = self._hash
        if h is None:
            h = self._hash = hash(("BitString", self.bits))
        return h

    def __repr__(self) -> str:
        return f"BitString(bits={self.bits!r})"

    def words(self, word_bits: int) -> int:
        """Number of word_bits-bit CONGEST words needed to carry this string."""
        if word_bits <= 0:
            raise ValueError("word size must be positive")
        return max(1, -(-len(self.bits) // word_bits))

    def to_int(self) -> int:
        value = 0
        for b in self.bits:
            value = (value << 1) | b
        return value

    @staticmethod
    def from_int(value: int, length: int) -> "BitString":
        bits = tuple((value >> (length - 1 - i)) & 1 for i in range(length))
        return BitString._wrap(bits)

    def concat(self, other: "BitString") -> "BitString":
        return BitString._wrap(self.bits + other.bits)

    @staticmethod
    def concat_all(pieces: Sequence["BitString"]) -> "BitString":
        """Concatenate many pieces in one pass (the broadcast-reassembly
        path; pairwise ``concat`` in a loop is quadratic)."""
        bits: list[int] = []
        for piece in pieces:
            bits.extend(piece.bits)
        return BitString._wrap(tuple(bits))


def random_bitstring(rng, length: int) -> BitString:
    """Draw ``length`` fair bits from a ``random.Random``-like source."""
    return BitString._wrap(tuple(rng.getrandbits(1) for _ in range(length)))


def bits_from_ints(values: Sequence[int], word_bits: int) -> BitString:
    """Pack integers (each < 2**word_bits) into one bit string."""
    bits: list[int] = []
    for v in values:
        if v < 0 or v >= (1 << word_bits):
            raise ValueError(f"value {v} does not fit in {word_bits} bits")
        bits.extend((v >> (word_bits - 1 - i)) & 1 for i in range(word_bits))
    return BitString._wrap(tuple(bits))
