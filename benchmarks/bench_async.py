"""T3.4 / A-SYNC — the asynchronous side of the paper.

Theorem 3.4: asynchronous (Δ+1)-list-coloring with Õ(n^1.5) messages in
Õ(n) time.  Because every stage of Algorithm 1 is written in count-based
lockstep, the identical pipeline runs under the event-driven engine with
adversarial delays; this bench measures its messages/time scaling and the
alpha-synchronizer's overhead bound (Theorem A.5).
"""

import pytest

from repro.congest.async_network import AsyncNetwork
from repro.congest.node import NodeAlgorithm
from repro.congest.synchronizer import synchronize
from repro.coloring.algorithm1 import run_algorithm1
from repro.coloring.verify import check_proper_coloring
from repro.graphs.generators import connected_gnp_graph

from _util import fit_exponent, fmt, print_table

SEED = 88


def test_async_algorithm1_scaling(benchmark):
    def sweep():
        rows = []
        for n in (120, 220, 380):
            g = connected_gnp_graph(n, 0.25, seed=SEED + n)
            anet = AsyncNetwork(g, seed=SEED)
            r = run_algorithm1(anet, seed=SEED + 1)
            check_proper_coloring(g, r.colors)
            rows.append({
                "n": n, "m": g.m, "msgs": r.messages, "time": r.rounds,
            })
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    msg_exp = fit_exponent([(r["n"], r["msgs"]) for r in rows])
    time_exp = fit_exponent([(r["n"], r["time"]) for r in rows])
    print_table(
        "T3.4: asynchronous Algorithm 1 (adversarial delays)",
        ["n", "m", "messages", "async time", "msgs/m"],
        [(r["n"], r["m"], r["msgs"], r["time"], fmt(r["msgs"] / r["m"]))
         for r in rows],
    )
    print(f"fitted exponents: messages ~ n^{msg_exp:.2f}, "
          f"time ~ n^{time_exp:.2f}")
    benchmark.extra_info["message_exponent"] = msg_exp
    benchmark.extra_info["time_exponent"] = time_exp
    assert msg_exp < 1.9         # o(m) on dense graphs
    assert time_exp < 1.5        # Õ(n)-flavored time


def test_async_matches_sync_messages(benchmark):
    """Delays reorder, they don't add messages: async message counts stay
    within a small factor of the synchronous run."""
    from repro.congest.network import SyncNetwork

    def run_pair():
        g = connected_gnp_graph(200, 0.25, seed=SEED + 5)
        anet = AsyncNetwork(g, seed=SEED)
        ra = run_algorithm1(anet, seed=SEED + 2)
        check_proper_coloring(g, ra.colors)
        snet = SyncNetwork(g, seed=SEED)
        rs = run_algorithm1(snet, seed=SEED + 2)
        check_proper_coloring(g, rs.colors)
        return ra.messages, rs.messages

    a_msgs, s_msgs = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    print(f"\nasync msgs = {a_msgs}, sync msgs = {s_msgs}, "
          f"ratio = {a_msgs / s_msgs:.2f}")
    benchmark.extra_info["ratio"] = a_msgs / s_msgs
    assert 0.5 < a_msgs / s_msgs < 2.0


class SilentInner(NodeAlgorithm):
    def __init__(self, rounds):
        self.rounds = rounds

    def on_round(self, ctx, inbox):
        if ctx.round >= self.rounds:
            ctx.done("done")


def test_synchronizer_overhead_curve(benchmark):
    """Theorem A.5: overhead = 2(T+1) m_active, linear in T."""

    def sweep():
        g = connected_gnp_graph(120, 0.2, seed=SEED + 7)
        rows = []
        for T in (4, 8, 16, 32):
            anet = AsyncNetwork(g, seed=SEED)
            res = synchronize(anet, lambda T=T: SilentInner(T), T)
            assert all(o == "done" for o in res.outputs)
            rows.append({
                "T": T, "messages": anet.stats.messages,
                "bound": 2 * (T + 1) * g.m,
            })
        return g, rows

    g, rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        f"A-SYNC: alpha-synchronizer overhead (n={g.n}, m={g.m})",
        ["T", "messages", "2(T+1)m bound", "utilization"],
        [(r["T"], r["messages"], r["bound"],
          fmt(r["messages"] / r["bound"])) for r in rows],
    )
    benchmark.extra_info["rows"] = rows
    for r in rows:
        assert r["messages"] <= r["bound"]
    # linearity in T
    exp = fit_exponent([(r["T"], r["messages"]) for r in rows])
    print(f"fitted overhead exponent in T ~ {exp:.2f} (theory: 1)")
    assert 0.8 < exp < 1.2
