"""Count-identity guarantees of the batched send path.

The engine's accounting modes are different *speeds*, never different
*measurements*:

* stats-lite (``collect_utilization=False``) vs full accounting must
  agree on sends / messages / words / rounds;
* batched per-round charging (the default) vs the per-send reference
  path (``eager_charges=True``) must agree on everything, including the
  per-stage breakdown, utilized edges, and the per-tag / per-sender
  loads.

Parametrized across graph families, methods (coloring and MIS, broadcast
fan-out and unicast-heavy), and seeds.
"""

from __future__ import annotations

import pytest

from repro.coloring.algorithm1 import run_algorithm1
from repro.coloring.baselines import run_baseline_coloring
from repro.congest.network import SyncNetwork
from repro.graphs.generators import family_graph
from repro.mis.algorithm3 import run_algorithm3
from repro.mis.luby import run_luby

RUNNERS = {
    "kt1-delta-plus-one": (1, lambda net, seed: run_algorithm1(net, seed=seed)),
    "baseline-trial": (1, lambda net, seed: run_baseline_coloring(net, "trial")),
    "kt2-sampled-greedy": (2, lambda net, seed: run_algorithm3(net, seed=seed)),
    "luby": (1, lambda net, seed: run_luby(net)),
}

CORE_COUNTS = ("sends", "messages", "words", "rounds")


def _run_counts(graph, method: str, seed: int, **net_kwargs) -> dict:
    rho, runner = RUNNERS[method]
    net = SyncNetwork(graph, rho=rho, seed=seed, **net_kwargs)
    runner(net, seed)
    stats = net.stats
    return {
        "sends": stats.sends,
        "messages": stats.messages,
        "words": stats.words,
        "rounds": stats.rounds,
        "stages": [s.as_dict() for s in stats.stages],
        "utilized": stats.utilized,
        "by_tag": dict(stats.by_tag),
        "by_sender": stats.by_sender,
    }


@pytest.mark.parametrize("seed", [0, 1])
@pytest.mark.parametrize("method", sorted(RUNNERS))
@pytest.mark.parametrize("family,n", [("gnp", 40), ("regular", 36),
                                      ("powerlaw", 44)])
def test_batched_vs_eager_vs_lite(family, n, method, seed):
    graph = family_graph(family, n, p=0.3, seed=seed)
    batched = _run_counts(graph, method, seed)
    eager = _run_counts(graph, method, seed, eager_charges=True)
    assert batched == eager

    lite = _run_counts(graph, method, seed, collect_utilization=False)
    for field in CORE_COUNTS:
        assert lite[field] == batched[field]
    assert lite["stages"] == batched["stages"]
    # Lite mode skips the breakdowns entirely.
    assert lite["utilized"] == set()
    assert lite["by_tag"] == {}
    assert lite["by_sender"] == {}
    # Full mode's breakdowns are internally consistent with the totals.
    assert sum(batched["by_tag"].values()) == batched["messages"]
    assert sum(batched["by_sender"].values()) == batched["messages"]
