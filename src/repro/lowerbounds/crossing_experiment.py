"""The crossing dichotomy experiments (Sections 2.3-2.4).

For a comparison-based algorithm A and a crossing (e, e′) the proofs give
a two-step argument:

1. if A does not utilize e or e′ on the base graph, the executions on
   G ∪ G′ and G_{e,e′} are similar (Corollary 2.7), and
2. similar executions give the same decoded outputs, which are wrong on
   the crossed graph (Lemma 2.9 for coloring, Lemma 2.13 for MIS).

`run_crossing_trial` executes A on both graphs under ψ_{e,e′} with traces
enabled and records: whether the pair was utilized, whether the decoded
executions were similar, and whether the output is correct on each graph
— so both steps of the argument become assertions.  `dichotomy_experiment`
repeats this over a sample of the t³-member family F, yielding the
correct-fraction/utilization trade-off behind Lemma 2.11 and the Yao
averaging of Theorems 2.12/2.16.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.congest.network import SyncNetwork
from repro.congest.trace import traces_similar
from repro.coloring.verify import coloring_violations
from repro.lowerbounds.construction import (
    CrossingInstance,
    sample_family,
)
from repro.mis.verify import mis_violations


@dataclass
class CrossingRecord:
    """One trial of one algorithm on one crossing."""

    t: int
    indices: tuple[int, int, int]
    pair_utilized: bool
    executions_similar: bool
    correct_on_base: bool
    correct_on_crossed: bool
    base_messages: int
    base_utilized_edges: int
    violation_witness: Optional[tuple]


def _correct(problem: str, graph, outputs) -> tuple[bool, Optional[tuple]]:
    if problem == "coloring":
        colors = [out["color"] if out else None for out in outputs]
        bad = coloring_violations(graph, colors)
        return (not bad and all(c is not None for c in colors),
                tuple(bad[0]) if bad else None)
    if problem == "mis":
        in_mis = [bool(out and out["in_mis"]) for out in outputs]
        bad = mis_violations(graph, in_mis)
        witness = None
        if bad["independence"]:
            witness = ("independence",) + tuple(bad["independence"][0])
        elif bad["maximality"]:
            witness = ("maximality", bad["maximality"][0])
        return (not bad["independence"] and not bad["maximality"], witness)
    raise ValueError(f"unknown problem {problem!r}")


def run_crossing_trial(
    inst: CrossingInstance,
    algorithm_factory: Callable,
    problem: str,
    seed: int = 0,
    rho: int = 1,
) -> CrossingRecord:
    """Execute one algorithm on the base and crossed graphs under ψ."""
    base_net = SyncNetwork(
        inst.base, rho=rho, assignment=inst.psi, seed=seed,
        comparison_based=True, record_trace=True,
    )
    base_stage = base_net.run(algorithm_factory, name="base")
    base_ok, _ = _correct(problem, inst.base, base_stage.outputs)

    crossed_net = SyncNetwork(
        inst.crossed, rho=rho, assignment=inst.psi, seed=seed,
        comparison_based=True, record_trace=True,
    )
    crossed_stage = crossed_net.run(algorithm_factory, name="base")
    crossed_ok, witness = _correct(problem, inst.crossed,
                                   crossed_stage.outputs)

    utilized = base_net.stats.utilized
    pair_utilized = inst.e in utilized or inst.e_prime in utilized
    similar = traces_similar(base_net.trace, crossed_net.trace)
    return CrossingRecord(
        t=inst.t,
        indices=(inst.y_index, inst.z_index, inst.x_index),
        pair_utilized=pair_utilized,
        executions_similar=similar,
        correct_on_base=base_ok,
        correct_on_crossed=crossed_ok,
        base_messages=base_net.stats.messages,
        base_utilized_edges=len(utilized),
        violation_witness=witness,
    )


def dichotomy_experiment(
    t: int,
    algorithm_factory: Callable,
    problem: str,
    sample: int = 20,
    seed: int = 0,
    rho: int = 1,
) -> list[CrossingRecord]:
    """Run trials over a sample of the family F."""
    records = []
    for i, inst in enumerate(sample_family(t, sample, seed=seed)):
        records.append(run_crossing_trial(
            inst, algorithm_factory, problem, seed=seed + i, rho=rho,
        ))
    return records


def summarize_records(records: list[CrossingRecord]) -> dict:
    """Aggregate a trial batch into the quantities the theorems speak about."""
    total = len(records)
    unutilized = [r for r in records if not r.pair_utilized]
    return {
        "trials": total,
        "base_correct_fraction":
            sum(r.correct_on_base for r in records) / max(total, 1),
        "crossed_correct_fraction":
            sum(r.correct_on_crossed for r in records) / max(total, 1),
        "pair_utilized_fraction":
            sum(r.pair_utilized for r in records) / max(total, 1),
        "mean_messages":
            sum(r.base_messages for r in records) / max(total, 1),
        "mean_utilized_edges":
            sum(r.base_utilized_edges for r in records) / max(total, 1),
        # The dichotomy (Cor. 2.7 + Lemmas 2.9/2.13): every non-utilized
        # crossing must yield a similar execution and a wrong output.
        "dichotomy_holds": all(
            r.executions_similar and not r.correct_on_crossed
            for r in unutilized
        ) if unutilized else True,
        "unutilized_trials": len(unutilized),
    }
