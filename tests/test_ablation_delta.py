"""Ablation: Algorithm 1's danner parameter delta (DESIGN.md ablation).

Theorem 1.1's delta knob trades danner edges (messages) against danner
diameter (rounds); Algorithm 1 inherits the trade-off through Step 1.
The paper fixes delta = 1/2; this ablation confirms that every setting
stays correct and that the knob moves cost in the documented direction
on a dense graph.
"""

from repro.congest.inspect import NetworkInspector
from repro.congest.network import SyncNetwork
from repro.coloring.algorithm1 import run_algorithm1
from repro.coloring.verify import check_proper_coloring
from repro.graphs.generators import connected_gnp_graph


def run_at(delta, g, seed=3):
    net = SyncNetwork(g, seed=seed)
    result = run_algorithm1(net, seed=seed + 1, delta=delta)
    check_proper_coloring(g, result.colors)
    groups = NetworkInspector(net).stage_groups()
    danner_msgs = sum(
        v["messages"] for k, v in groups.items() if "danner" in k
    )
    return result, danner_msgs


def test_all_deltas_correct_and_danner_shrinks():
    g = connected_gnp_graph(150, 0.4, seed=2)
    rows = {}
    for delta in (0.25, 0.5, 0.75):
        result, danner_msgs = run_at(delta, g)
        rows[delta] = (result.messages, danner_msgs)
    # At simulation scales the danner's dominant term is m*log n/n^delta,
    # so its cost falls as delta grows (fewer landmark edges kept).
    assert rows[0.25][1] > rows[0.75][1]


def test_notify_term_is_minor_share():
    """The B->L palette notifications (DESIGN.md §5) stay a modest share
    of Algorithm 1's bill on a dense graph."""
    g = connected_gnp_graph(200, 0.4, seed=5)
    net = SyncNetwork(g, seed=6)
    result = run_algorithm1(net, seed=7)
    check_proper_coloring(g, result.colors)
    groups = NetworkInspector(net).stage_groups()
    notify = sum(
        v["messages"] for k, v in groups.items() if "notify" in k
    )
    assert notify < 0.5 * result.messages
    assert notify > 0   # it does exist and is charged
