"""Declarative sweep specifications.

A :class:`SweepSpec` is the cross product

    graph family x size n x seed x method (x engine)

and expands to a list of :class:`Cell` objects, each a single
self-contained run (picklable, so the worker pool can ship it to another
process).  Every cell has a stable string :meth:`Cell.key` used by the
JSON-lines store for resume: a completed key is never re-run.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator, Optional

from repro.errors import ReproError

#: Methods dispatched to :func:`repro.api.color_graph`.
COLORING_METHODS = (
    "kt1-delta-plus-one",
    "kt1-eps-delta",
    "baseline-trial",
    "baseline-rank-greedy",
)

#: Methods dispatched to :func:`repro.api.find_mis`.
MIS_METHODS = (
    "kt2-sampled-greedy",
    "luby",
    "rank-greedy",
)

ALL_METHODS = COLORING_METHODS + MIS_METHODS

ENGINES = ("sync", "async")

#: The only methods the event-driven engine can run today (Theorem 3.4);
#: Algorithm 2 is synchronous in the paper and the MIS API has no
#: asynchronous mode, so async cells for them are rejected up front
#: rather than mislabeled or crashed mid-sweep.
ASYNC_METHODS = ("kt1-delta-plus-one",)


@dataclass(frozen=True)
class Cell:
    """One experiment: a (family, n, seed, method, engine) point.

    ``timeout_s`` / ``retries`` do not participate in :meth:`key` — they
    change how patiently a cell is run, not what it measures.
    """

    family: str
    n: int
    seed: int
    method: str
    engine: str = "sync"
    density: float = 0.2
    epsilon: float = 0.5
    collect_utilization: bool = False
    #: Wall-clock budget per attempt (None = unlimited, run in-pool).
    timeout_s: Optional[float] = None
    #: Extra attempts after a timed-out one before recording failure.
    retries: int = 0

    def key(self) -> str:
        """Stable identity for the resume store.

        Every field that changes what a cell measures participates, so a
        re-run with (say) a different epsilon or full accounting is a new
        cell, not a resume hit serving stale numbers.
        """
        return (
            f"{self.family}/n{self.n}/p{self.density:g}/"
            f"{self.method}/{self.engine}/eps{self.epsilon:g}/"
            f"{'full' if self.collect_utilization else 'lite'}/"
            f"s{self.seed}"
        )

    @property
    def problem(self) -> str:
        return "coloring" if self.method in COLORING_METHODS else "mis"


@dataclass(frozen=True)
class SweepSpec:
    """A declarative experiment matrix.

    ``density`` is the family's density knob (edge probability for gnp,
    degree fraction for regular, attachment/10 for powerlaw).  By default
    sweeps run stats-lite (``collect_utilization=False``): message, word,
    and round counts are identical to full accounting, and bulk runs only
    need those.
    """

    families: tuple[str, ...] = ("gnp",)
    sizes: tuple[int, ...] = (100, 200)
    seeds: tuple[int, ...] = (0,)
    methods: tuple[str, ...] = ("kt1-delta-plus-one",)
    engine: str = "sync"
    density: float = 0.2
    epsilon: float = 0.5
    collect_utilization: bool = False
    #: Per-cell wall-clock budget: a cell still running after ``timeout_s``
    #: seconds is killed (its worker process terminated, the pool intact),
    #: retried up to ``retries`` times, and finally recorded with
    #: ``status="timeout"`` — aggregation excludes such records from
    #: exponent fits, and the store's resume set skips them so a re-run
    #: attempts them again.
    timeout_s: Optional[float] = None
    retries: int = 0

    def __post_init__(self):
        for m in self.methods:
            if m not in ALL_METHODS:
                raise ReproError(
                    f"unknown method {m!r}; known: {', '.join(ALL_METHODS)}"
                )
        if self.engine not in ENGINES:
            raise ReproError(f"unknown engine {self.engine!r}")
        if self.engine == "async":
            bad = [m for m in self.methods if m not in ASYNC_METHODS]
            if bad:
                raise ReproError(
                    f"method(s) {', '.join(bad)} cannot run on the async "
                    f"engine (supported: {', '.join(ASYNC_METHODS)})"
                )
        if (not self.sizes or not self.seeds or not self.families
                or not self.methods):
            raise ReproError("sweep spec has an empty axis")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ReproError("timeout_s must be positive (or None)")
        if self.retries < 0:
            raise ReproError("retries must be >= 0")

    def cells(self) -> Iterator[Cell]:
        """Expand the matrix in deterministic order."""
        for family in self.families:
            for n in self.sizes:
                for method in self.methods:
                    for seed in self.seeds:
                        yield Cell(
                            family=family,
                            n=n,
                            seed=seed,
                            method=method,
                            engine=self.engine,
                            density=self.density,
                            epsilon=self.epsilon,
                            collect_utilization=self.collect_utilization,
                            timeout_s=self.timeout_s,
                            retries=self.retries,
                        )

    @property
    def size(self) -> int:
        return (len(self.families) * len(self.sizes) * len(self.methods)
                * len(self.seeds))

    def with_full_stats(self) -> "SweepSpec":
        return replace(self, collect_utilization=True)
