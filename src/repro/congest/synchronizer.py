"""Awerbuch's alpha-synchronizer (paper Theorem A.5).

Simulates a synchronous algorithm A on the asynchronous engine: every
simulated-round message is acknowledged; a node that has collected all
its acks is *safe* and says so to its active neighbors; a node enters
simulated round r+1 once it is safe for r and has heard "safe r" from
every active neighbor.  Overhead: one ack per message plus one safe
message per active edge per round — at most 2(T+1)·m_active extra
messages for a T-round algorithm, which is exactly the budget Theorem
A.5 grants and what lets Algorithm 1's Step 3 run asynchronously inside
each G[B_i] (Theorem 3.4) without touching inactive edges.

The wrapped algorithm runs for a fixed round budget T (supplied by the
caller, as synchronous algorithms come with round bounds); its sends must
stay within the declared active edge set.

Input per node: ``{"active": frozenset-or-None, "inner": <inner input>}``.
Output: the inner algorithm's output.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.congest.ids import NodeId
from repro.congest.node import Context, NodeAlgorithm
from repro.errors import (
    ModelViolationError,
    ProtocolError,
    SynchronizerBudgetError,
)


class _SimContext:
    """The synchronous Context surface, backed by a capture buffer."""

    def __init__(self, outer: Context, inner_input: Any):
        self.knowledge = outer.knowledge
        self.n = outer.n
        self.input = inner_input
        self.rng = outer.rng
        self.round = 0
        self.captured: list[tuple[NodeId, str, tuple]] = []
        self._finished = False
        self._output: Any = None
        self._outer = outer

    @property
    def word_bits(self) -> int:
        return self._outer.word_bits

    @property
    def words_per_message(self) -> int:
        return self._outer.words_per_message

    @property
    def my_id(self) -> NodeId:
        return self.knowledge.my_id

    @property
    def neighbor_ids(self) -> tuple[NodeId, ...]:
        return self.knowledge.neighbor_ids

    @property
    def degree(self) -> int:
        return len(self.knowledge.neighbor_ids)

    def send(self, to_id: NodeId, tag: str, *fields) -> None:
        self.captured.append((to_id, tag, tuple(fields)))

    def broadcast(self, to_ids, tag: str, *fields) -> None:
        payload = tuple(fields)
        self.captured.extend((to_id, tag, payload) for to_id in to_ids)

    def done(self, output: Any = None) -> None:
        self._finished = True
        self._output = output

    def set_output(self, output: Any) -> None:
        self._output = output

    @property
    def finished(self) -> bool:
        return self._finished

    @property
    def output(self) -> Any:
        return self._output


class _SimMsg:
    __slots__ = ("sender_id", "tag", "fields")

    def __init__(self, sender_id, tag, fields):
        self.sender_id = sender_id
        self.tag = tag
        self.fields = fields


class AlphaSynchronizer(NodeAlgorithm):
    """Run a synchronous NodeAlgorithm for T rounds on the async engine."""

    passive_when_idle = True

    def __init__(self, inner_factory: Callable[[], NodeAlgorithm],
                 total_rounds: int):
        self.inner_factory = inner_factory
        self.total_rounds = total_rounds

    def setup(self, ctx: Context) -> None:
        state = ctx.input or {}
        active = state.get("active")
        if active is None:
            active = frozenset(ctx.neighbor_ids)
        self.active = frozenset(u for u in ctx.neighbor_ids if u in active)
        self.inner = self.inner_factory()
        self.sim = _SimContext(ctx, state.get("inner"))
        self.inner.setup(self.sim)
        self.r = 0
        self.pending_acks = 0
        self.my_safe = False
        self.safe_heard: dict[int, set] = {}
        self.buffers: dict[int, list] = {}
        self.finished = False

    # -- mechanics ---------------------------------------------------------

    def _publish(self, ctx: Context) -> None:
        # Only a finished node is done: a logically-stuck synchronizer must
        # surface as an engine-level deadlock, not as a silent None output.
        if self.finished:
            ctx.done(self.sim._output)

    def _run_inner_round(self, ctx: Context) -> None:
        self.sim.round = self.r
        self.sim.captured = []
        inbox = self.buffers.pop(self.r, [])
        self.inner.on_round(self.sim, inbox)
        self.pending_acks = 0
        for to_id, tag, fields in self.sim.captured:
            if to_id not in self.active:
                raise ModelViolationError(
                    "synchronized algorithm sent outside its active edges"
                )
            ctx.send(to_id, "m", self.r, tag, fields)
            self.pending_acks += 1
        self.my_safe = False

    def _settle(self, ctx: Context) -> None:
        """Drive the synchronizer state machine to a fixed point."""
        while not self.finished:
            if not self.my_safe and self.pending_acks == 0:
                self.my_safe = True
                for u in self.active:
                    ctx.send(u, "safe", self.r)
                continue
            if (self.my_safe
                    and self.safe_heard.get(self.r, set()) >= self.active):
                self.safe_heard.pop(self.r, None)
                self.r += 1
                if self.r > self.total_rounds:
                    if not self.sim._finished:
                        raise SynchronizerBudgetError(
                            "inner algorithm did not finish within the "
                            "synchronizer's round budget"
                        )
                    self.finished = True
                    self._publish(ctx)
                    return
                self._run_inner_round(ctx)
                continue
            return

    # -- protocol ------------------------------------------------------------

    def on_round(self, ctx: Context, inbox) -> None:
        if ctx.round == 0:
            self._publish(ctx)
            self._run_inner_round(ctx)
            self._settle(ctx)
            return
        for msg in inbox:
            if msg.tag == "m":
                r, tag, fields = msg.fields
                # A message sent in simulated round r is delivered at the
                # start of simulated round r + 1, as in the sync model.
                self.buffers.setdefault(r + 1, []).append(
                    _SimMsg(msg.sender_id, tag, fields)
                )
                ctx.send(msg.sender_id, "ack", r)
            elif msg.tag == "ack":
                self.pending_acks -= 1
            elif msg.tag == "safe":
                (r,) = msg.fields
                self.safe_heard.setdefault(r, set()).add(msg.sender_id)
        if not self.finished:
            self._settle(ctx)


def synchronize(
    net,
    inner_factory: Callable[[], NodeAlgorithm],
    total_rounds: int,
    active_sets=None,
    inner_inputs=None,
    name: str = "alpha-sync",
):
    """Driver: run a synchronous algorithm under the alpha-synchronizer.

    Works on either engine (on SyncNetwork it simply adds the
    synchronizer's overhead, which tests use to verify the 2(T+1)m bound).
    """
    n = net.graph.n
    inputs = []
    for v in range(n):
        inputs.append({
            "active": None if active_sets is None else active_sets[v],
            "inner": None if inner_inputs is None else inner_inputs[v],
        })
    return net.run(
        lambda: AlphaSynchronizer(inner_factory, total_rounds),
        inputs=inputs,
        name=name,
    )
