"""One-call entry points for the library.

These wrap the full pipelines (network construction, algorithm, output
verification, accounting) behind the API a downstream user wants:

>>> from repro import api
>>> from repro.graphs import gnp_random_graph
>>> g = gnp_random_graph(400, 0.1, seed=1)
>>> result = api.color_graph(g, method="kt1-delta-plus-one", seed=2)
>>> result.valid, result.messages_per_edge < 10
(True, True)

Methods:

* coloring — ``kt1-delta-plus-one`` (Algorithm 1, Thm. 3.3),
  ``kt1-eps-delta`` (Algorithm 2, Thm. 3.8), ``baseline-trial`` /
  ``baseline-rank-greedy`` (the Ω(m) classics).
* MIS — ``kt2-sampled-greedy`` (Algorithm 3, Thm. 4.1), ``luby``
  (the Õ(m) baseline), ``rank-greedy`` (comparison-based classic).

Engines: every method runs on both the synchronous engine and, with
``asynchronous=True``, the event-driven engine under a chosen latency
model.  Async-native protocols (count-based lockstep: Algorithm 1,
Luby, the baselines) run unchanged; round-cadence protocols (Algorithm
2's phase cadence, Algorithm 3's parallel greedy) are auto-wrapped in
the alpha-synchronizer (Theorem A.5).  An asynchronous call first
replays the same cell on the synchronous engine — that shadow run both
supplies the synchronizer's per-stage round budgets and serves as the
baseline for the *cost-of-asynchrony* metrics
(:attr:`RunReport.overhead_messages` / ``overhead_rounds``).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.congest.async_network import AsyncNetwork
from repro.congest.network import SyncNetwork
from repro.congest.runtime import make_scheduler
from repro.errors import SynchronizerBudgetError
from repro.coloring.algorithm1 import run_algorithm1
from repro.coloring.algorithm2 import run_algorithm2
from repro.coloring.baselines import run_baseline_coloring
from repro.coloring.verify import (
    coloring_violations,
    survivor_coloring_violations,
)
from repro.errors import ReproError
from repro.graphs.core import Graph
from repro.mis.algorithm3 import run_algorithm3
from repro.mis.baselines import run_rank_greedy_mis
from repro.mis.luby import run_luby
from repro.mis.verify import mis_violations, survivor_mis_violations


@dataclass
class RunReport:
    """Common accounting attached to every API result.

    For asynchronous runs (``engine == "async"``) the report also carries
    the shadow synchronous baseline of the same cell and the derived
    cost of asynchrony: ``overhead_messages = messages - sync_messages``
    (the synchronizer's acks/safes plus any count drift from reordering)
    and ``overhead_rounds = rounds - sync_rounds`` (normalized async time
    minus synchronous rounds; negative when asynchrony finishes faster
    than the round clock).  ``synchronized_stages`` counts the stages
    that needed alpha-synchronizer wrapping (0 for async-native methods).
    """

    method: str
    n: int
    m: int
    messages: int
    rounds: int
    utilized_edges: int
    stage_messages: dict = field(default_factory=dict)
    #: wall-clock seconds per stage name (aggregated like
    #: ``stage_messages``) — where the engine actually spent its time;
    #: diagnostic only, never part of count identity.
    stage_wall: dict = field(default_factory=dict)
    #: wall-clock seconds of the primary engine's driver run.
    wall: Optional[float] = None
    engine: str = "sync"
    latency: Optional[str] = None
    sync_messages: Optional[int] = None
    sync_rounds: Optional[int] = None
    overhead_messages: Optional[int] = None
    overhead_rounds: Optional[int] = None
    synchronized_stages: int = 0
    #: Fault seam (``docs/faults.md``): the active fault spec (None on
    #: the fault-free path), the charged messages the faults destroyed,
    #: how many nodes ever crashed, and which vertices are casualties.
    #: ``survivor_valid`` is the survivor-restricted validity verdict —
    #: it mirrors ``.valid`` on faulted runs and is None when fault-free
    #: (where plain validity applies to every node).
    faults: Optional[str] = None
    dropped_messages: int = 0
    crashed_nodes: int = 0
    casualty_vertices: tuple = ()
    survivor_valid: Optional[bool] = None

    @property
    def messages_per_edge(self) -> float:
        return self.messages / max(self.m, 1)


@dataclass
class ColoringResult:
    colors: list[Optional[int]]
    num_colors: int
    palette_bound: int
    valid: bool
    report: RunReport
    detail: object = None

    @property
    def messages(self) -> int:
        return self.report.messages

    @property
    def messages_per_edge(self) -> float:
        return self.report.messages_per_edge


@dataclass
class MISResult:
    in_mis: list[bool]
    size: int
    valid: bool
    report: RunReport
    detail: object = None

    @property
    def messages(self) -> int:
        return self.report.messages


def _report(method: str, net, engine: str = "sync",
            latency: Optional[str] = None,
            baseline=None) -> RunReport:
    # Aggregate with += : a driver may legally reuse a stage name (e.g. a
    # retry loop), and assignment would silently drop the earlier stages
    # from the breakdown, breaking sum(stage_messages) == messages.
    per_stage: dict = {}
    per_stage_wall: dict = {}
    for s in net.stats.stages:
        per_stage[s.name] = per_stage.get(s.name, 0) + s.messages
        per_stage_wall[s.name] = per_stage_wall.get(s.name, 0.0) + s.wall
    report = RunReport(
        method=method,
        n=net.graph.n,
        m=net.graph.m,
        messages=net.stats.messages,
        rounds=net.stats.rounds,
        utilized_edges=net.stats.utilized_count,
        stage_messages=per_stage,
        stage_wall=per_stage_wall,
        engine=engine,
        latency=latency,
        synchronized_stages=len(getattr(net, "synchronized_stages", ())),
    )
    if baseline is not None:
        report.sync_messages = baseline.stats.messages
        report.sync_rounds = baseline.stats.rounds
        report.overhead_messages = report.messages - report.sync_messages
        report.overhead_rounds = report.rounds - report.sync_rounds
    if net.faults is not None:
        report.faults = net.faults.spec
        report.dropped_messages = net.stats.dropped_messages
        report.crashed_nodes = net.faults.crashed_count
        report.casualty_vertices = tuple(sorted(net.faults.casualties))
    return report


def _run_engines(build, drive, asynchronous: bool, latency: str,
                 faults=None, scheduler=None):
    """Run a cell on the requested engine.

    ``build(engine_cls, **engine_kwargs)`` constructs the network;
    ``drive(net)`` runs the method's driver and returns its outputs.
    Asynchronous cells first replay on the synchronous engine: the
    shadow run's per-stage round counts become the alpha-synchronizer
    budgets, and its totals become the overhead baseline.

    The shadow is a *heuristic* budget oracle, not a sound one: an
    asynchronous execution may legitimately diverge from it (a
    delivery-order-dependent leader election picks a different
    broadcast root, reseeding the shared random string), and a wrapped
    stage can then need more simulated rounds than the shadow recorded.
    When the synchronizer's budget expires the whole async run is
    retried from scratch on a fresh network with every budget doubled
    (a few escalations; the delay stream restarts identically, so only
    the budgets change).  Only the successful attempt's network is
    returned and accounted.

    ``faults`` (a spec string or FaultModel) applies to the *primary*
    engine only; the shadow run stays fault-free so the synchronizer
    budgets and the overhead baseline describe the undamaged execution.

    ``scheduler`` (``"rounds"`` / ``"columnar"`` / None) selects the
    synchronous delivery discipline; it applies to every synchronous
    network built here — the primary sync engine *and* the async
    shadow (whose counts are scheduler-invariant by the columnar parity
    contract).  The event-driven engine keeps its own scheduler.

    Returns ``(net, outputs, shadow_net_or_None, wall_seconds)`` where
    ``wall_seconds`` times the successful primary drive.
    """
    def run(net):
        # Multi-stage drivers read stage outputs between stages (the
        # danner builds its tree from the flood's parents, say); a
        # casualty's output is None, and a driver that cannot proceed
        # without it must fail naming the fault regime, not with a raw
        # TypeError from deep inside its pipeline.
        if net.faults is None:
            return drive(net)
        try:
            return drive(net)
        except ReproError:
            raise
        except Exception as exc:
            raise ReproError(
                f"driver failed under fault injection "
                f"{net.faults.spec!r}: {exc!r} (the method's "
                "inter-stage logic needs outputs a casualty never "
                "produced)"
            ) from exc

    if not asynchronous:
        net = build(SyncNetwork, faults=faults,
                    scheduler=make_scheduler(scheduler))
        t0 = time.perf_counter()
        outputs = run(net)
        return net, outputs, None, time.perf_counter() - t0
    shadow = build(SyncNetwork, scheduler=make_scheduler(scheduler))
    drive(shadow)
    budgets = [(s.name, s.rounds) for s in shadow.stats.stages]
    last_error: Optional[SynchronizerBudgetError] = None
    for scale in (1, 2, 4, 8):
        net = build(
            AsyncNetwork, latency=latency, faults=faults,
            round_budgets=[(name, rounds * scale)
                           for name, rounds in budgets],
        )
        try:
            t0 = time.perf_counter()
            outputs = run(net)
            return net, outputs, shadow, time.perf_counter() - t0
        except SynchronizerBudgetError as exc:
            last_error = exc
    raise last_error


def color_graph(
    graph: Graph,
    method: str = "kt1-delta-plus-one",
    seed: int = 0,
    epsilon: float = 0.5,
    asynchronous: bool = False,
    latency: str = "uniform",
    collect_utilization: bool = True,
    faults=None,
    scheduler: Optional[str] = None,
    **kwargs,
) -> ColoringResult:
    """Color a connected graph with one of the paper's algorithms.

    ``asynchronous=True`` reruns the method under the event-driven
    engine with the given ``latency`` model (``fixed`` / ``uniform`` /
    ``exponential`` / ``heavy_tail``); round-cadence methods are
    auto-synchronized (see module docstring).  ``latency`` is ignored
    for synchronous runs.

    ``collect_utilization=False`` runs the engine in stats-lite mode
    (identical message/word/round counts, no utilized-edge or per-tag
    breakdowns) — the mode bulk experiment sweeps use.

    ``faults`` injects failures (a spec like ``"drop:0.05"`` /
    ``"crash:0.1"`` / ``"adversary:64"``, or a
    :class:`~repro.congest.runtime.FaultModel`); ``None``/``"none"`` is
    the bit-identical fault-free path.  Under faults ``result.valid``
    is the *survivor-validity* verdict: correctness judged only on the
    nodes the fault model left undamaged (``docs/faults.md``).

    ``scheduler`` selects the synchronous delivery discipline:
    ``"rounds"`` (the scalar reference), ``"columnar"`` (numpy-
    vectorized rounds, bit-identical counts, see ``docs/columnar.md``),
    or None to consult the ``REPRO_SCHEDULER`` environment variable
    (which is how sweep workers inherit the choice) and fall back to
    the default.
    """
    if faults == "none":
        faults = None
    if scheduler is None:
        scheduler = os.environ.get("REPRO_SCHEDULER") or None
    if method == "kt1-delta-plus-one":
        def build(engine, **engine_kwargs):
            return engine(graph, rho=1, seed=seed,
                          collect_utilization=collect_utilization,
                          **engine_kwargs)

        def drive(net):
            detail = run_algorithm1(net, seed=seed, **kwargs)
            return detail.colors, graph.max_degree() + 1, detail
    elif method == "kt1-eps-delta":
        def build(engine, **engine_kwargs):
            return engine(graph, rho=1, seed=seed,
                          collect_utilization=collect_utilization,
                          **engine_kwargs)

        def drive(net):
            detail = run_algorithm2(net, epsilon=epsilon, seed=seed,
                                    **kwargs)
            return detail.colors, detail.palette_size, detail
    elif method in ("baseline-trial", "baseline-rank-greedy"):
        kind = method.removeprefix("baseline-")

        def build(engine, **engine_kwargs):
            return engine(
                graph, rho=1, seed=seed,
                comparison_based=(kind == "rank-greedy"),
                collect_utilization=collect_utilization,
                **engine_kwargs,
            )

        def drive(net):
            colors, detail = run_baseline_coloring(net, kind)
            return colors, graph.max_degree() + 1, detail
    else:
        raise ReproError(f"unknown coloring method {method!r}")

    net, (colors, bound, detail), shadow, wall = _run_engines(
        build, drive, asynchronous, latency, faults=faults,
        scheduler=scheduler,
    )
    if net.faults is not None:
        valid = not survivor_coloring_violations(
            graph, colors, net.faults.casualties
        )
    else:
        valid = (
            not coloring_violations(graph, colors)
            and all(c is not None for c in colors)
        )
    report = _report(
        method, net,
        engine="async" if asynchronous else "sync",
        latency=latency if asynchronous else None,
        baseline=shadow,
    )
    report.wall = wall
    if net.faults is not None:
        report.survivor_valid = valid
    return ColoringResult(
        colors=colors,
        num_colors=len({c for c in colors if c is not None}),
        palette_bound=bound,
        valid=valid,
        report=report,
        detail=detail,
    )


def find_mis(
    graph: Graph,
    method: str = "kt2-sampled-greedy",
    seed: int = 0,
    comparison_based: bool = True,
    asynchronous: bool = False,
    latency: str = "uniform",
    collect_utilization: bool = True,
    faults=None,
    scheduler: Optional[str] = None,
    **kwargs,
) -> MISResult:
    """Compute an MIS of a connected graph.

    ``asynchronous=True`` reruns the method under the event-driven
    engine (``latency`` as in :func:`color_graph`); Algorithm 3's
    round-cadence greedy stage is auto-synchronized, Luby and rank-greedy
    run async-native.  ``collect_utilization=False`` selects the
    engine's stats-lite mode.  ``faults`` injects failures exactly as
    in :func:`color_graph`; ``result.valid`` then reports
    survivor-validity (independence strict among survivors, maximality
    owed only where the whole closed neighborhood survived).
    ``scheduler`` selects the synchronous delivery discipline exactly
    as in :func:`color_graph` (``REPRO_SCHEDULER`` supplies the
    default).
    """
    if faults == "none":
        faults = None
    if scheduler is None:
        scheduler = os.environ.get("REPRO_SCHEDULER") or None
    if method == "kt2-sampled-greedy":
        rho = 2
    elif method in ("luby", "rank-greedy"):
        rho = 1
    else:
        raise ReproError(f"unknown MIS method {method!r}")

    def build(engine, **engine_kwargs):
        return engine(graph, rho=rho, seed=seed,
                      comparison_based=comparison_based,
                      collect_utilization=collect_utilization,
                      **engine_kwargs)

    def drive(net):
        if method == "kt2-sampled-greedy":
            detail = run_algorithm3(net, seed=seed, **kwargs)
            return detail.in_mis, detail
        if method == "luby":
            in_mis, detail = run_luby(net)
            return in_mis, detail
        in_mis, detail = run_rank_greedy_mis(net)
        return in_mis, detail

    net, (in_mis, detail), shadow, wall = _run_engines(
        build, drive, asynchronous, latency, faults=faults,
        scheduler=scheduler,
    )
    if net.faults is not None:
        bad = survivor_mis_violations(graph, in_mis, net.faults.casualties)
    else:
        bad = mis_violations(graph, in_mis)
    valid = not bad["independence"] and not bad["maximality"]
    report = _report(
        method, net,
        engine="async" if asynchronous else "sync",
        latency=latency if asynchronous else None,
        baseline=shadow,
    )
    report.wall = wall
    if net.faults is not None:
        report.survivor_valid = valid
    return MISResult(
        in_mis=in_mis,
        size=sum(in_mis),
        valid=valid,
        report=report,
        detail=detail,
    )
