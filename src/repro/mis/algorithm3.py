"""Algorithm 3: comparison-based MIS in KT-2 CONGEST (Theorem 4.1).

Õ(n^1.5) messages, Õ(sqrt n) rounds.  Steps (paper Section 4):

1. **Sample** — every node privately joins S with probability c/sqrt(n)
   and draws a random rank.
2. **Randomized greedy on S** — the parallel rank-greedy (see
   :mod:`repro.mis.greedy`); equivalent to Θ(sqrt n) iterations of the
   sequential randomized greedy, which whp crushes the remnant maximum
   degree to Õ(sqrt n) (Konrad [21], Lemma 1).
3. **Inform 2-hop neighbors** — each joiner's 1-hop neighbors relay the
   join to exactly the 2-hop neighbors that chose them as relay, using
   KT-2 knowledge to build a local depth-2 BFS tree: node w relays
   joiner u to x ∈ N(w) \\ N[u] iff w is the minimum-ID common neighbor
   of u and x.  Pure ID comparisons — the algorithm stays
   comparison-based — and exactly one message reaches each 2-hop
   neighbor per joiner (link congestion, bounded by |S|, is what the
   Õ(sqrt n) round bound pays for).
4. **Prune** — with KT-2 plus the received joins, every node decides
   locally which neighbors are deactivated (joined or dominated): v
   knows N(u) for each neighbor u and knows every joiner within 2 hops,
   so domination of u is computable with zero messages.
5. **Finish** — run Luby on the remnant graph (max degree Õ(sqrt n), so
   Õ(n^1.5) messages again).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.congest.node import Context, NodeAlgorithm
from repro.errors import ProtocolError
from repro.mis.greedy import ParallelGreedyMIS
from repro.mis.luby import LubyMIS


class InformTwoHop(NodeAlgorithm):
    """Step 3: relay joins to 2-hop neighborhoods via local BFS trees.

    Input: ``{"joined": bool, "joined_neighbors": frozenset}`` from the
    greedy stage.  Output: ``{"two_hop_joiners": frozenset}``.
    """

    passive_when_idle = True

    def setup(self, ctx: Context) -> None:
        state = ctx.input or {}
        self.joined_neighbors = state.get("joined_neighbors", frozenset())
        self.two_hop: set = set()

    def _publish(self, ctx: Context) -> None:
        ctx.done({"two_hop_joiners": frozenset(self.two_hop)})

    def _relay_targets(self, ctx: Context, joiner):
        """The 2-hop neighbors of ``joiner`` that I must relay to.

        I relay to x iff x is my neighbor, x is not in N[joiner], and I am
        the minimum-ID common neighbor of joiner and x — all decidable
        from KT-2 knowledge by ID comparisons alone.
        """
        n_joiner = ctx.knowledge.neighborhood_of(joiner)
        me = ctx.my_id
        # I am always a common neighbor of joiner and x, so I am the
        # minimum iff no common neighbor beats me.  The common neighbors
        # smaller than me are exactly the members of N(joiner) smaller
        # than me that also neighbor x — computing that candidate set
        # once per joiner replaces a set-intersection + min() scan per
        # target with a single isdisjoint check (still nothing but ID
        # comparisons, so the comparison-based discipline holds).
        beaters = frozenset(y for y in n_joiner if y < me)
        for x in ctx.neighbor_ids:
            if x == joiner or x in n_joiner:
                continue
            if beaters.isdisjoint(ctx.knowledge.neighborhood_of(x)):
                yield x

    def on_round(self, ctx: Context, inbox) -> None:
        if ctx.round == 0:
            for joiner in self.joined_neighbors:
                for x in self._relay_targets(ctx, joiner):
                    ctx.send(x, "relay", joiner)
        for msg in inbox:
            (joiner,) = msg.fields
            self.two_hop.add(joiner)
        self._publish(ctx)


@dataclass
class Algorithm3Result:
    in_mis: list[bool]
    sampled: int
    greedy_joined: int
    luby_joined: int
    remnant_size: int
    remnant_max_degree_local: int
    messages: int
    rounds: int
    stage_messages: dict


def run_algorithm3(
    net,
    seed=0,
    sample_constant: float = 1.0,
    name_prefix: str = "alg3",
) -> Algorithm3Result:
    """Run Algorithm 3 on a KT-2 network (requires rho >= 2).

    The algorithm is comparison-based: it runs under a comparison_based
    network unchanged (and tests do exactly that to machine-check the
    discipline).
    """
    if net.rho < 2:
        raise ProtocolError("Algorithm 3 needs KT-2 knowledge (rho >= 2)")
    n = net.graph.n
    msgs_before = net.stats.messages
    rounds_before = net.stats.rounds

    # Steps 1-2: sample S with private coins and run parallel greedy.
    # Sampling and ranks are drawn inside the stage's per-node RNG via a
    # deterministic pre-pass here (same seeds the engine would hand out),
    # keeping the whole decision node-local.
    import random as _random

    prob = min(1.0, sample_constant / math.sqrt(max(n, 1)))
    in_s = []
    ranks = []
    for v in range(n):
        rng = _random.Random(f"{seed}-alg3-sample-{v}")
        in_s.append(rng.random() < prob)
        ranks.append(rng.randrange(max(n, 2) ** 3))
    greedy = net.run(
        ParallelGreedyMIS,
        inputs=[
            {"in_s": in_s[v], "rank": ranks[v]} for v in range(n)
        ],
        name=f"{name_prefix}-greedy",
    )
    joined = [bool(out["joined"]) for out in greedy.outputs]

    # Step 3: inform 2-hop neighborhoods.
    inform = net.run(
        InformTwoHop,
        inputs=[
            {
                "joined": joined[v],
                "joined_neighbors": greedy.outputs[v]["joined_neighbors"],
            }
            for v in range(n)
        ],
        name=f"{name_prefix}-inform",
    )

    # Step 4: local pruning.  For each node v decide, with v-local
    # information only (KT-2 + received joins), whether v and each of its
    # neighbors remain in the remnant.
    participate = []
    active_sets = []
    remnant_count = 0
    remnant_max_deg = 0
    for v in range(n):
        out_v = greedy.outputs[v]
        joiners_2hop = (
            set(inform.outputs[v]["two_hop_joiners"])
            | set(out_v["joined_neighbors"])
        )
        my_id = net.knowledge[v].my_id
        if joined[v] or (set(out_v["joined_neighbors"])):
            participate.append(False)
            active_sets.append(frozenset())
            continue
        active = set()
        for u in net.knowledge[v].neighbor_ids:
            if u in out_v["joined_neighbors"]:
                continue
            # u is dominated iff some neighbor of u joined; v knows N(u)
            # (KT-2) and every joiner within two hops of itself.
            n_u = net.knowledge[v].neighborhood_of(u)
            if n_u & joiners_2hop:
                continue
            active.add(u)
        participate.append(True)
        active_sets.append(frozenset(active))
        remnant_count += 1
        remnant_max_deg = max(remnant_max_deg, len(active))

    # Step 5: Luby on the remnant.
    luby = net.run(
        LubyMIS,
        inputs=[
            {"active": active_sets[v], "participate": participate[v]}
            for v in range(n)
        ],
        name=f"{name_prefix}-luby",
    )
    in_mis = []
    luby_joined = 0
    for v in range(n):
        if joined[v]:
            in_mis.append(True)
        elif participate[v] and luby.outputs[v]["in_mis"]:
            in_mis.append(True)
            luby_joined += 1
        else:
            in_mis.append(False)

    stage_messages = {
        "greedy": greedy.stats.messages,
        "inform": inform.stats.messages,
        "luby": luby.stats.messages,
    }
    return Algorithm3Result(
        in_mis=in_mis,
        sampled=sum(in_s),
        greedy_joined=sum(joined),
        luby_joined=luby_joined,
        remnant_size=remnant_count,
        remnant_max_degree_local=remnant_max_deg,
        messages=net.stats.messages - msgs_before,
        rounds=net.stats.rounds - rounds_before,
        stage_messages=stage_messages,
    )
