"""Engine parity: async outputs match sync outputs on fixed seeds.

Leader-free pipelines are engine-deterministic: the auto-synchronized
stages (Algorithm 3's parallel greedy) are simulated faithfully by the
alpha-synchronizer — same per-node RNG streams, same simulated-round
delivery — and the async-native lockstep methods (Luby, the baselines)
are count-driven, so reordering deliveries cannot change their
decisions.  Their outputs must be *bit-identical* across engines.

Pipelines that elect a broadcast root (Algorithm 2's spanning tree,
Algorithm 1's danner) are delivery-order dependent *by design* — a
different root is a different legitimate execution and reseeds the
shared random string — so for them parity means: valid outputs and
identical protocol constants, not identical colorings.  Parametrized
across three graph families (satellite requirement) and both problem
kinds.
"""

from __future__ import annotations

import pytest

from repro import api
from repro.graphs.generators import family_graph

FAMILIES = [("gnp", 40), ("regular", 36), ("grid", 42)]


@pytest.mark.parametrize("family,n", FAMILIES)
@pytest.mark.parametrize("method", ["baseline-trial",
                                    "baseline-rank-greedy"])
def test_coloring_outputs_match_across_engines(family, n, method):
    graph = family_graph(family, n, p=0.3, seed=1)
    sync = api.color_graph(graph, method=method, seed=2)
    cfg = api.color_graph(graph, method=method, seed=2, asynchronous=True)
    assert sync.valid and cfg.valid
    assert cfg.colors == sync.colors
    assert cfg.report.sync_messages == sync.report.messages


@pytest.mark.parametrize("family,n", FAMILIES)
def test_algorithm2_async_parity_of_constants(family, n):
    """Algorithm 2 wraps its phase cadence in the synchronizer; the
    elected broadcast root may differ across engines, so the coloring is
    compared on validity and the aggregate-derived constants."""
    graph = family_graph(family, n, p=0.3, seed=1)
    sync = api.color_graph(graph, method="kt1-eps-delta", seed=2)
    cfg = api.color_graph(graph, method="kt1-eps-delta", seed=2,
                          asynchronous=True)
    assert sync.valid and cfg.valid
    assert cfg.report.synchronized_stages >= 1
    assert cfg.palette_bound == sync.palette_bound
    assert cfg.detail.phases == sync.detail.phases
    assert cfg.detail.max_degree == sync.detail.max_degree


@pytest.mark.parametrize("family,n", FAMILIES)
@pytest.mark.parametrize("method", ["kt2-sampled-greedy", "luby",
                                    "rank-greedy"])
def test_mis_outputs_match_across_engines(family, n, method):
    graph = family_graph(family, n, p=0.3, seed=3)
    sync = api.find_mis(graph, method=method, seed=4)
    amis = api.find_mis(graph, method=method, seed=4, asynchronous=True)
    assert sync.valid and amis.valid
    assert amis.in_mis == sync.in_mis
    assert amis.size == sync.size
    if method == "kt2-sampled-greedy":
        assert amis.report.synchronized_stages >= 1
        assert amis.report.overhead_messages > 0


@pytest.mark.parametrize("family,n", FAMILIES)
def test_algorithm1_async_valid_with_overhead_report(family, n):
    """Algorithm 1 runs async-native; its coloring must stay proper and
    the overhead accounting must reconcile (the danner's flood is
    delay-adaptive, so colors may legitimately differ from sync)."""
    graph = family_graph(family, n, p=0.3, seed=5)
    res = api.color_graph(graph, seed=6, asynchronous=True)
    assert res.valid
    rep = res.report
    assert rep.synchronized_stages == 0
    assert rep.overhead_messages == rep.messages - rep.sync_messages


def test_budget_escalation_when_async_diverges_from_shadow():
    """The shadow sync run is a heuristic budget oracle: when the async
    execution elects a different broadcast root, a wrapped stage can
    need more rounds than the shadow recorded.  The api layer must
    escalate the budgets and succeed, not crash (regression: this exact
    cell used to raise SynchronizerBudgetError)."""
    graph = family_graph("gnp", 80, p=0.1, seed=10)
    res = api.color_graph(graph, method="kt1-eps-delta", seed=10,
                          epsilon=1.0, asynchronous=True,
                          latency="heavy_tail")
    assert res.valid
    assert res.report.synchronized_stages >= 1
