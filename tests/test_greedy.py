"""Tests for randomized greedy MIS: sequential/parallel equivalence."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.congest.network import SyncNetwork
from repro.graphs.generators import gnp_random_graph
from repro.mis.greedy import (
    greedy_by_rank,
    run_parallel_greedy,
    sequential_greedy_mis,
)
from repro.mis.verify import check_mis

from tests.conftest import connected_families


def test_sequential_greedy_is_mis(gnp_small):
    order = list(range(gnp_small.n))
    mis = sequential_greedy_mis(gnp_small, order)
    check_mis(gnp_small, [v in mis for v in range(gnp_small.n)])


def test_sequential_greedy_respects_order():
    from repro.graphs.core import Graph

    g = Graph(3, [(0, 1), (1, 2)])
    assert sequential_greedy_mis(g, [1, 0, 2]) == {1}
    assert sequential_greedy_mis(g, [0, 1, 2]) == {0, 2}


@pytest.mark.parametrize("name,graph", connected_families(seed=800))
def test_parallel_equals_sequential_on_family(name, graph):
    rng = random.Random(hash(name) & 0xFFFF)
    ranks = [rng.randrange(10**9) for _ in range(graph.n)]
    net = SyncNetwork(graph, seed=3)
    stage = run_parallel_greedy(net, [True] * graph.n, ranks, rank_space=10**9)
    par = {v for v in range(graph.n) if stage.outputs[v]["joined"]}
    keys = [(ranks[v], net.assignment.value_of(v)) for v in range(graph.n)]
    seq = greedy_by_rank(graph, range(graph.n), keys)
    assert par == seq, name


def test_parallel_on_subset_matches_induced(gnp_medium):
    rng = random.Random(4)
    members = [v for v in range(gnp_medium.n) if rng.random() < 0.4]
    ranks = [rng.randrange(10**9) for _ in range(gnp_medium.n)]
    in_s = [v in set(members) for v in range(gnp_medium.n)]
    net = SyncNetwork(gnp_medium, seed=5)
    stage = run_parallel_greedy(net, in_s, ranks, rank_space=10**9)
    par = {v for v in range(gnp_medium.n) if stage.outputs[v]["joined"]}
    keys = [(ranks[v], net.assignment.value_of(v))
            for v in range(gnp_medium.n)]
    seq = greedy_by_rank(gnp_medium, members, keys)
    assert par == seq


def test_greedy_mis_of_members_is_maximal_in_induced(gnp_small):
    rng = random.Random(6)
    members = sorted(v for v in range(gnp_small.n) if rng.random() < 0.5)
    keys = [rng.randrange(10**9) for _ in range(gnp_small.n)]
    mis = greedy_by_rank(gnp_small, members, keys)
    sub, mapping = gnp_small.subgraph_with_mapping(members)
    flags = [False] * sub.n
    for v in mis:
        flags[mapping[v]] = True
    check_mis(sub, flags)


def test_non_members_never_join(gnp_small):
    net = SyncNetwork(gnp_small, seed=7)
    in_s = [v % 3 == 0 for v in range(gnp_small.n)]
    ranks = [v for v in range(gnp_small.n)]
    stage = run_parallel_greedy(net, in_s, ranks, rank_space=10**9)
    for v in range(gnp_small.n):
        if not in_s[v]:
            assert not stage.outputs[v]["joined"]


def test_outputs_record_join_knowledge(gnp_small):
    net = SyncNetwork(gnp_small, seed=8)
    ranks = [v for v in range(gnp_small.n)]
    stage = run_parallel_greedy(net, [True] * gnp_small.n, ranks, rank_space=10**9)
    joined = {v for v in range(gnp_small.n) if stage.outputs[v]["joined"]}
    for v in range(gnp_small.n):
        expected = {
            net.id_of(u) for u in gnp_small.neighbors(v) if u in joined
        }
        assert set(stage.outputs[v]["joined_neighbors"]) == expected


def test_message_cost_tracks_s_size(gnp_medium):
    """Announcements cost |S| * deg-ish, not m, for small S."""
    rng = random.Random(9)
    sparse_s = [rng.random() < 0.05 for _ in range(gnp_medium.n)]
    ranks = [rng.randrange(10**9) for _ in range(gnp_medium.n)]
    net = SyncNetwork(gnp_medium, seed=10)
    run_parallel_greedy(net, sparse_s, ranks, rank_space=10**9)
    assert net.stats.messages < 1.2 * gnp_medium.m


@given(st.integers(4, 30), st.floats(0.1, 0.6), st.integers(0, 10**6))
@settings(max_examples=15, deadline=None)
def test_property_equivalence(n, p, seed):
    g = gnp_random_graph(n, p, seed=seed)
    rng = random.Random(seed + 1)
    ranks = [rng.randrange(10**6) for _ in range(n)]
    net = SyncNetwork(g, seed=seed)
    stage = run_parallel_greedy(net, [True] * n, ranks, rank_space=10**6)
    par = {v for v in range(n) if stage.outputs[v]["joined"]}
    keys = [(ranks[v], net.assignment.value_of(v)) for v in range(n)]
    assert par == greedy_by_rank(g, range(n), keys)
