"""Distributed multi-host sweep execution.

The exponent fits behind the paper's claims want many families x sizes
x seeds x engines cells — more than one machine delivers in reasonable
time.  This module splits a
:class:`~repro.experiments.spec.SweepSpec` across hosts:

* a **coordinator** (:class:`Coordinator` / :func:`serve_sweep`) serves
  cells over a TCP work queue with lease + heartbeat + requeue-on-dead-
  worker semantics and merges every incoming record into the one
  resumable JSON-lines :class:`~repro.experiments.store.ResultStore`;
* a **worker** (:func:`run_worker`, ``repro worker --connect
  HOST:PORT``) pulls cells, runs each through the supervised process
  farm (per-cell timeouts and retries included, exactly as a local
  sweep would), and streams the records back.

Wire protocol
-------------
JSON-lines over a plain TCP socket, strictly request/response from the
worker's side, versioned so a coordinator and worker with different
conventions refuse to mix records instead of silently mispooling them:

    worker -> {"type": "hello", "protocol": "repro-sweep", "version": V,
               "worker": ID}
    coord  <- {"type": "welcome", "version": V, "lease_s": S}
            | {"type": "reject", "reason": ...}        # then close
    worker -> {"type": "lease"}
    coord  <- {"type": "cell", "cell": {...}}          # Cell.to_dict()
            | {"type": "idle", "retry_s": S}           # leased out, wait
            | {"type": "shutdown"}                     # sweep complete
    worker -> {"type": "heartbeat", "key": K}          # while running
    coord  <- {"type": "ok"} | {"type": "gone"}        # lease reassigned
    worker -> {"type": "result", "record": {...}}
    coord  <- {"type": "ok", "accepted": bool}

Leases are keyed on ``cell.key()``.  A worker that stops heartbeating
(crash, network partition) has its leases expire and the cells are
re-served to other workers; a cell requeued more than ``max_requeues``
times is recorded with ``status="lost"`` so the sweep still terminates.
Duplicate results for one key (a lease that expired on a worker that
then finished anyway) are dropped at the queue, and the store's readers
apply last-record-wins per key regardless, so the merged store is safe
to aggregate even when races slip through.
"""

from __future__ import annotations

import json
import os
import socket
import socketserver
import threading
import time
from collections import deque
from typing import Callable, Iterable, Optional

from repro.errors import DistributedError, ProtocolMismatchError
from repro.experiments.runner import (
    _failure_record,
    _run_cells_with_timeout,
)
from repro.experiments.spec import Cell, SweepSpec
from repro.experiments.store import ResultStore

PROTOCOL = "repro-sweep"
PROTOCOL_VERSION = 1
DEFAULT_LEASE_S = 30.0
DEFAULT_MAX_REQUEUES = 5


# -- framing ------------------------------------------------------------------


def _send_msg(wfile, msg: dict) -> None:
    wfile.write((json.dumps(msg, sort_keys=True) + "\n").encode("utf-8"))
    wfile.flush()


def _recv_msg(rfile) -> Optional[dict]:
    """One JSON-lines message, or None when the peer closed the stream."""
    line = rfile.readline()
    if not line:
        return None
    try:
        msg = json.loads(line)
    except json.JSONDecodeError as exc:
        raise DistributedError(f"malformed protocol line: {exc}")
    if not isinstance(msg, dict):
        raise DistributedError("protocol message is not an object")
    return msg


# -- the lease queue ----------------------------------------------------------


class WorkQueue:
    """Thread-safe cell queue with per-key leases.

    The coordinator's single source of truth: every cell is either
    pending, leased (keyed on ``cell.key()``, with an expiry a healthy
    worker keeps pushing forward via heartbeats), or done.  Expired or
    dropped leases put the cell back on the pending deque; a cell that
    keeps getting requeued (``max_requeues`` exceeded) comes back from
    :meth:`reap` as *lost* so the caller can record a failure and the
    sweep can still finish.
    """

    def __init__(self, cells: Iterable[Cell],
                 lease_s: float = DEFAULT_LEASE_S,
                 max_requeues: int = DEFAULT_MAX_REQUEUES):
        self.lease_s = lease_s
        self.max_requeues = max_requeues
        self._lock = threading.Lock()
        self._pending: deque[Cell] = deque(cells)
        #: key -> [cell, worker_id, expires_at]
        self._leases: dict[str, list] = {}
        self._requeues: dict[str, int] = {}
        self._done: set[str] = set()
        #: done keys whose recorded outcome is a failure (lost lease or
        #: a non-ok record) — still supersedable by a real ok record.
        self._failed: set[str] = set()

    def lease(self, worker: str,
              now: Optional[float] = None) -> Optional[Cell]:
        """Hand the next pending cell to ``worker`` (None = none free)."""
        now = time.monotonic() if now is None else now
        with self._lock:
            if not self._pending:
                return None
            cell = self._pending.popleft()
            self._leases[cell.key()] = [cell, worker, now + self.lease_s]
            return cell

    def heartbeat(self, worker: str, key: str,
                  now: Optional[float] = None) -> bool:
        """Extend ``worker``'s lease on ``key``; False if it no longer
        holds one (expired and reassigned — the result may be dropped)."""
        now = time.monotonic() if now is None else now
        with self._lock:
            lease = self._leases.get(key)
            if lease is None or lease[1] != worker:
                return False
            lease[2] = now + self.lease_s
            return True

    def complete(self, worker: str, key: str, ok: bool) -> bool:
        """Mark ``key`` done; True if the caller should keep the record.

        Any worker's result completes the key — even one whose lease
        expired (its record is just as valid; the cell is fixed-seed
        deterministic).  A key already done is a duplicate and the
        record should be dropped, with one asymmetry: a key whose
        recorded outcome so far is a *failure* (a lost lease, or a
        timeout/error submitted by a presumed-dead worker while the
        re-served copy was still running) is superseded by a later real
        ok record — last-record-wins, the store readers' convention.
        """
        with self._lock:
            if key in self._done:
                if ok and key in self._failed:
                    self._failed.discard(key)
                    return True
                return False
            self._leases.pop(key, None)
            # Only a previously requeued key can still sit in pending
            # (a never-requeued one was popped when leased), so the
            # deque scan is skipped in the common case.
            if self._requeues.get(key):
                self._pending = deque(
                    c for c in self._pending if c.key() != key
                )
            self._done.add(key)
            if not ok:
                self._failed.add(key)
            return True

    def release_worker(self, worker: str) -> list[Cell]:
        """Requeue every lease held by a disconnected worker."""
        with self._lock:
            keys = [k for k, lease in self._leases.items()
                    if lease[1] == worker]
            return [self._requeue_locked(k) for k in keys]

    def reap(self, now: Optional[float] = None) -> list[Cell]:
        """Requeue expired leases; returns the cells declared *lost*
        (requeued more than ``max_requeues`` times, now marked done)."""
        now = time.monotonic() if now is None else now
        lost = []
        with self._lock:
            expired = [k for k, lease in self._leases.items()
                       if lease[2] < now]
            for key in expired:
                cell = self._requeue_locked(key)
                if cell is not None:
                    lost.append(cell)
        return lost

    def _requeue_locked(self, key: str) -> Optional[Cell]:
        """Drop ``key``'s lease; returns the cell only if it became
        lost (otherwise it went back on the pending deque)."""
        cell, _, _ = self._leases.pop(key)
        self._requeues[key] = self._requeues.get(key, 0) + 1
        if self._requeues[key] > self.max_requeues:
            self._done.add(key)
            self._failed.add(key)
            return cell
        self._pending.append(cell)
        return None

    def requeues(self, key: str) -> int:
        with self._lock:
            return self._requeues.get(key, 0)

    def finished(self) -> bool:
        with self._lock:
            return not self._pending and not self._leases

    def outstanding(self) -> int:
        with self._lock:
            return len(self._pending) + len(self._leases)


# -- coordinator --------------------------------------------------------------


class _WorkerConnection(socketserver.StreamRequestHandler):
    """One coordinator-side thread per connected worker."""

    def handle(self):  # noqa: C901 - one dispatch loop, clearer flat
        coord: "Coordinator" = self.server.coordinator
        # A healthy worker is never silent longer than a lease (it
        # heartbeats at lease/3 while running); a socket quiet for two
        # leases is a dead peer and its cells must go back in the queue.
        self.connection.settimeout(max(10.0, 2 * coord.lease_s))
        worker = None
        try:
            hello = _recv_msg(self.rfile)
            if (not hello or hello.get("type") != "hello"
                    or hello.get("protocol") != PROTOCOL):
                _send_msg(self.wfile, {
                    "type": "reject",
                    "reason": "not a repro-sweep worker handshake",
                })
                return
            if hello.get("version") != PROTOCOL_VERSION:
                _send_msg(self.wfile, {
                    "type": "reject",
                    "reason": (
                        f"protocol version {hello.get('version')!r} != "
                        f"coordinator {PROTOCOL_VERSION}; records from "
                        "mismatched conventions must not be pooled — "
                        "upgrade the older side"
                    ),
                })
                return
            worker = str(hello.get("worker")
                         or f"{self.client_address[0]}:{self.client_address[1]}")
            _send_msg(self.wfile, {"type": "welcome",
                                   "version": PROTOCOL_VERSION,
                                   "lease_s": coord.lease_s})
            while True:
                msg = _recv_msg(self.rfile)
                if msg is None:
                    return
                kind = msg.get("type")
                if kind == "lease":
                    cell = coord.queue.lease(worker)
                    if cell is not None:
                        _send_msg(self.wfile, {"type": "cell",
                                               "cell": cell.to_dict()})
                    elif coord.queue.finished():
                        _send_msg(self.wfile, {"type": "shutdown"})
                        return
                    else:
                        # Everything is leased out; work may still come
                        # back if another worker's lease expires.
                        _send_msg(self.wfile, {
                            "type": "idle",
                            "retry_s": min(1.0, coord.lease_s / 4),
                        })
                elif kind == "heartbeat":
                    alive = coord.queue.heartbeat(worker, msg.get("key"))
                    _send_msg(self.wfile,
                              {"type": "ok" if alive else "gone"})
                elif kind == "result":
                    record = msg.get("record")
                    if not isinstance(record, dict) or "key" not in record:
                        raise DistributedError("result without a record")
                    accepted = coord.submit(worker, record)
                    _send_msg(self.wfile, {"type": "ok",
                                           "accepted": accepted})
                else:
                    raise DistributedError(
                        f"unknown message type {kind!r}")
        except (DistributedError, socket.timeout, OSError):
            # Whatever this worker held goes back in the queue; the
            # reaper/finish logic below records anything declared lost.
            pass
        finally:
            if worker is not None:
                coord.release_worker_cells(worker)


class _CoordinatorServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


class Coordinator:
    """Serve a sweep's cells to remote workers and merge their records.

    The counterpart of :func:`repro.experiments.run_sweep` for
    multi-host execution: the same resume semantics (cells whose key the
    store already holds are never served), the same store (every record
    a worker streams back is appended and flushed immediately), and the
    same failure conventions (a cell no worker could finish is recorded
    with ``status="lost"``, ``valid=False``, excluded from fits and
    retried by the next resume).

    Usage::

        coord = Coordinator(spec, store=store)
        host, port = coord.start()
        ... point `repro worker --connect host:port` at it ...
        fresh = coord.wait()
    """

    def __init__(
        self,
        spec: Optional[SweepSpec] = None,
        store: Optional[ResultStore] = None,
        cells: Optional[Iterable[Cell]] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        lease_s: float = DEFAULT_LEASE_S,
        max_requeues: int = DEFAULT_MAX_REQUEUES,
        progress: Optional[Callable[[dict, int, int], None]] = None,
    ):
        if cells is None:
            if spec is None:
                raise DistributedError("Coordinator needs a spec or cells")
            cells = spec.cells()
        done = store.completed_keys() if store is not None else set()
        todo = [c for c in cells if c.key() not in done]
        self.total = len(todo)
        self.lease_s = lease_s
        self.queue = WorkQueue(todo, lease_s=lease_s,
                               max_requeues=max_requeues)
        self.fresh: list[dict] = []
        self.duplicates = 0
        self._store = store
        self._progress = progress
        self._lock = threading.Lock()
        # Serializes "mark done in the queue" with "write the record":
        # check_finished takes it too, so no thread can observe the
        # queue finished while the final record is still unwritten
        # (wait() returning before the last append reaches the store).
        self._submit_lock = threading.Lock()
        self._finished = threading.Event()
        self._server: Optional[_CoordinatorServer] = None
        self._threads: list[threading.Thread] = []
        self._host, self._port = host, port
        if not todo:
            self._finished.set()

    # -- lifecycle --------------------------------------------------------

    def start(self) -> tuple[str, int]:
        """Bind, start serving in background threads; returns (host, port)."""
        self._server = _CoordinatorServer(
            (self._host, self._port), _WorkerConnection
        )
        self._server.coordinator = self
        self.address = self._server.server_address[:2]
        serve = threading.Thread(target=self._server.serve_forever,
                                 kwargs={"poll_interval": 0.1},
                                 daemon=True)
        reap = threading.Thread(target=self._reap_loop, daemon=True)
        serve.start()
        reap.start()
        self._threads = [serve, reap]
        return self.address

    def wait(self, timeout: Optional[float] = None,
             linger_s: float = 0.0) -> list[dict]:
        """Block until every cell is recorded; returns the fresh records.

        ``linger_s`` keeps the coordinator up briefly after the last
        record so workers parked in the idle loop can come back for
        their shutdown message instead of finding a dead socket.
        """
        if not self._finished.wait(timeout):
            raise DistributedError(
                f"sweep not finished after {timeout}s "
                f"({self.queue.outstanding()} cells outstanding)"
            )
        if linger_s > 0:
            time.sleep(linger_s)
        self.stop()
        return self.fresh

    def stop(self) -> None:
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None

    def __enter__(self) -> "Coordinator":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- record sinks (called from handler/reaper threads) ----------------

    def submit(self, worker: str, record: dict) -> bool:
        """Merge one worker record; False if dropped as a duplicate."""
        with self._submit_lock:
            ok = record.get("status", "ok") == "ok"
            if not self.queue.complete(worker, record["key"], ok):
                self.duplicates += 1
                accepted = False
            else:
                self._record(record)
                accepted = True
        self.check_finished()
        return accepted

    def release_worker_cells(self, worker: str) -> None:
        """Requeue a disconnected worker's leases, recording any that
        exhausted their requeue budget."""
        with self._submit_lock:
            for cell in self.queue.release_worker(worker):
                if cell is not None:
                    self._record_lost(cell)
        self.check_finished()

    def _record_lost(self, cell: Cell) -> None:
        """A cell no worker could hold a lease on long enough."""
        self._record(_failure_record(
            cell, "lost",
            attempts=self.queue.requeues(cell.key()),
            error=("lease expired or worker died "
                   f"{self.queue.requeues(cell.key())} times"),
        ))

    def _record(self, rec: dict) -> None:
        with self._lock:
            self.fresh.append(rec)
            if self._store is not None:
                self._store.append(rec)
            count = len(self.fresh)
        if self._progress is not None:
            self._progress(rec, count, self.total)

    def check_finished(self) -> None:
        with self._submit_lock:
            if self.queue.finished():
                self._finished.set()

    def _reap_loop(self) -> None:
        interval = max(0.05, self.lease_s / 4)
        while not self._finished.wait(interval):
            with self._submit_lock:
                for cell in self.queue.reap():
                    self._record_lost(cell)
            self.check_finished()


def serve_sweep(
    spec: SweepSpec,
    store: Optional[ResultStore] = None,
    host: str = "127.0.0.1",
    port: int = 0,
    lease_s: float = DEFAULT_LEASE_S,
    max_requeues: int = DEFAULT_MAX_REQUEUES,
    progress: Optional[Callable[[dict, int, int], None]] = None,
    on_listen: Optional[Callable[[str, int], None]] = None,
    timeout: Optional[float] = None,
    linger_s: float = 2.0,
) -> list[dict]:
    """Serve ``spec``'s unfinished cells to workers until all complete.

    The distributed sibling of :func:`repro.experiments.run_sweep`:
    same resumable store, same return value (the newly produced
    records).  ``on_listen`` receives the bound (host, port) — with
    ``port=0`` that is the only way to learn the chosen port.
    """
    coord = Coordinator(spec, store=store, host=host, port=port,
                        lease_s=lease_s, max_requeues=max_requeues,
                        progress=progress)
    bound_host, bound_port = coord.start()
    if on_listen is not None:
        on_listen(bound_host, bound_port)
    try:
        return coord.wait(timeout, linger_s=linger_s)
    finally:
        coord.stop()


# -- worker -------------------------------------------------------------------


def _run_leased_cell(cell: Cell, heartbeat: Callable[[], None],
                     interval: float) -> dict:
    """Run one cell through the supervised farm, heartbeating meanwhile.

    The farm (one slot) gives the exact local-sweep semantics — the cell
    executes in a child process with its ``timeout_s``/``retries``
    honored and errors captured as records — while this thread stays
    free to service the lease.
    """
    out: list[dict] = []
    runner = threading.Thread(
        target=_run_cells_with_timeout, args=([cell], 1, out.append),
        daemon=True,
    )
    runner.start()
    while runner.is_alive():
        runner.join(interval)
        if runner.is_alive():
            heartbeat()
    if not out:
        # The farm records every outcome; an empty result means the
        # farm thread itself died, which is a worker bug.
        return _failure_record(cell, "error",
                               error="farm produced no record")
    return out[0]


def run_worker(
    host: str,
    port: int,
    worker_id: Optional[str] = None,
    poll_s: float = 1.0,
    progress: Optional[Callable[[dict, int], None]] = None,
) -> int:
    """Pull cells from a coordinator until it declares the sweep done.

    Returns the number of cells this worker completed.  Raises
    :class:`ProtocolMismatchError` when the coordinator rejects the
    handshake and :class:`DistributedError` when the connection is lost
    mid-sweep (the coordinator requeues whatever this worker held).
    """
    worker_id = worker_id or f"{socket.gethostname()}-{os.getpid()}"
    try:
        sock = socket.create_connection((host, port))
    except OSError as exc:
        raise DistributedError(
            f"cannot reach coordinator at {host}:{port}: {exc}")
    with sock:
        try:
            return _worker_loop(sock, poll_s, worker_id, progress)
        except DistributedError:
            raise
        except OSError as exc:
            # Abrupt transport failures (reset, broken pipe, timeout)
            # surface as the same error the CLI reports for a clean
            # close — never a raw traceback.
            raise DistributedError(
                f"connection to coordinator lost: {exc}")


def _worker_loop(sock, poll_s: float, worker_id: str,
                 progress) -> int:
    """The protocol side of :func:`run_worker`, on an open socket."""
    completed = 0
    rfile = sock.makefile("rb")
    wfile = sock.makefile("wb")
    _send_msg(wfile, {"type": "hello", "protocol": PROTOCOL,
                      "version": PROTOCOL_VERSION,
                      "worker": worker_id})
    welcome = _recv_msg(rfile)
    if welcome is None:
        raise DistributedError("coordinator closed during handshake")
    if welcome.get("type") == "reject":
        raise ProtocolMismatchError(
            welcome.get("reason", "handshake rejected"))
    if welcome.get("type") != "welcome":
        raise DistributedError(
            f"unexpected handshake reply {welcome.get('type')!r}")
    lease_s = float(welcome.get("lease_s", DEFAULT_LEASE_S))
    sock.settimeout(max(10.0, 2 * lease_s))
    heartbeat_interval = max(0.05, lease_s / 3)

    def _request(msg: dict) -> dict:
        _send_msg(wfile, msg)
        try:
            reply = _recv_msg(rfile)
        except socket.timeout:
            raise DistributedError("coordinator stopped responding")
        if reply is None:
            raise DistributedError("connection to coordinator lost")
        return reply

    while True:
        reply = _request({"type": "lease"})
        kind = reply.get("type")
        if kind == "shutdown":
            return completed
        if kind == "idle":
            time.sleep(float(reply.get("retry_s", poll_s)))
            continue
        if kind != "cell":
            raise DistributedError(
                f"unexpected lease reply {kind!r}")
        cell = Cell.from_dict(reply["cell"])
        record = _run_leased_cell(
            cell,
            heartbeat=lambda: _request(
                {"type": "heartbeat", "key": cell.key()}),
            interval=heartbeat_interval,
        )
        _request({"type": "result", "record": record})
        completed += 1
        if progress is not None:
            progress(record, completed)
