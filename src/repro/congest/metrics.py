"""Message-complexity accounting and utilized-edge tracking.

Message complexity is the quantity the whole paper is about; this module
is the measurement instrument.  It tracks:

* ``sends`` — logical send operations performed by algorithms;
* ``messages`` — charged CONGEST messages (a w-word payload costs
  ceil(w / words_per_message) messages);
* ``words`` — total Theta(log n)-bit words moved;
* ``rounds`` — synchronous rounds elapsed;
* ``utilized`` — the utilized edges of Definition 2.3: an edge {u, v} is
  utilized if (i) a message crosses it, (ii) u sends or receives phi(v), or
  (iii) v sends or receives phi(u).

Lemma 2.4 (utilized edges = O(message complexity)) becomes a checkable
invariant: each charged message contains at most O(1) IDs, so it can
utilize at most a constant number of edges; tests assert
``len(utilized) <= utilization_constant * messages``.

Hot-path representation (the engine charges every send through here, so
the containers are flat):

* utilized edges are stored as a ``set[int]`` of ``u * stride + v`` keys
  (``u < v``; ``stride`` is the vertex count when known) and only decoded
  back to ``(u, v)`` tuples by the :attr:`MessageStats.utilized` property;
* per-sender message counts live in a preallocated ``array('q', n)``
  instead of a dict (:attr:`MessageStats.by_sender` materializes the
  dict view on demand);
* :meth:`MessageStats.charge_send_batch` lets the engine account a whole
  round of sends with one call instead of one per send.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass

#: Flat-key stride used when the vertex count is unknown (standalone
#: MessageStats instances in tests/tools); any endpoint below 2^32 encodes
#: injectively.
_FALLBACK_STRIDE = 1 << 32


@dataclass
class StageStats:
    """Accounting for a single protocol stage."""

    name: str
    sends: int = 0
    messages: int = 0
    words: int = 0
    rounds: int = 0
    #: wall-clock seconds the engine spent driving this stage (measured
    #: by the network around the scheduler's run_stage call).  Excluded
    #: from count identity: timing is diagnostic, never a count.
    wall: float = 0.0

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "sends": self.sends,
            "messages": self.messages,
            "words": self.words,
            "rounds": self.rounds,
        }


class MessageStats:
    """Cumulative statistics for a network (across all stages).

    ``n`` — the vertex count, when known — sizes the flat per-sender
    counter array and the utilized-edge key stride.  A bare
    ``MessageStats()`` still supports every operation (per-sender counts
    fall back to a dict, utilized keys to a wide fixed stride).
    """

    def __init__(self, n: int = 0) -> None:
        self.sends = 0
        self.messages = 0
        self.words = 0
        self.rounds = 0
        #: charged messages the fault seam destroyed (drops, crash
        #: discards) — a subset of ``messages``: the sender paid, the
        #: receiver never saw them.  Always 0 on the fault-free path.
        self.dropped_messages = 0
        #: nodes that ever crashed under the active fault model (the
        #: network refreshes this from the FaultModel after each stage).
        self.crashed_nodes = 0
        self.stages: list[StageStats] = []
        #: charged messages per protocol tag (who is spending the budget)
        self.by_tag: dict[str, int] = {}
        self._n = n
        #: utilized-edge flat-key stride: key = u * stride + v with u < v.
        self.utilized_stride = n if n > 0 else _FALLBACK_STRIDE
        #: flat utilized-edge keys (engine hot path adds here directly).
        self._utilized: set[int] = set()
        if n > 0:
            # array('q', bytes(8*n)) is n zeroed signed-64 counters.
            self._sender_counts = array("q", bytes(8 * n))
            self._sender_fallback = None
        else:
            self._sender_counts = None
            self._sender_fallback: dict[int, int] = {}

    # -- charging ------------------------------------------------------------

    def charge_send(self, words: int, charged_messages: int,
                    tag: str = "", sender: int = -1) -> None:
        """Account one logical send (per-send reference path)."""
        self.sends += 1
        self.words += words
        self.messages += charged_messages
        if tag:
            self.by_tag[tag] = self.by_tag.get(tag, 0) + charged_messages
        if sender >= 0:
            counts = self._sender_counts
            if counts is not None:
                counts[sender] += charged_messages
            else:
                fallback = self._sender_fallback
                fallback[sender] = fallback.get(sender, 0) + charged_messages
        if self.stages:
            stage = self.stages[-1]
            stage.sends += 1
            stage.words += words
            stage.messages += charged_messages

    def charge_send_batch(self, sends: int, words: int,
                          messages: int) -> None:
        """Account a whole batch of sends (one call per engine round).

        Totals only — per-tag / per-sender / utilized breakdowns are
        either skipped (stats-lite) or applied by the caller alongside
        this call.  Count-identical to ``sends`` repetitions of
        :meth:`charge_send`.
        """
        self.sends += sends
        self.words += words
        self.messages += messages
        if self.stages:
            stage = self.stages[-1]
            stage.sends += sends
            stage.words += words
            stage.messages += messages

    def charge_dropped(self, charged_messages: int) -> None:
        """Account charged messages lost to the fault seam (already in
        ``messages`` — this tracks how much of the paid budget the
        adversary destroyed)."""
        self.dropped_messages += charged_messages

    def charge_round(self) -> None:
        self.charge_rounds(1)

    def charge_rounds(self, count: int) -> None:
        self.rounds += count
        if self.stages:
            self.stages[-1].rounds += count

    def mark_utilized(self, u: int, v: int) -> None:
        if u > v:
            u, v = v, u
        self._utilized.add(u * self.utilized_stride + v)

    # -- stage management ----------------------------------------------------

    def begin_stage(self, name: str) -> StageStats:
        stage = StageStats(name=name)
        self.stages.append(stage)
        return stage

    def stage_named(self, name: str) -> StageStats:
        for stage in self.stages:
            if stage.name == name:
                return stage
        raise KeyError(name)

    # -- views ---------------------------------------------------------------

    @property
    def utilized(self) -> set[tuple[int, int]]:
        """The utilized edges as ``(u, v)`` tuples (``u < v``), decoded
        from the flat keys.  Built on demand — hot paths never touch
        tuples."""
        stride = self.utilized_stride
        return {divmod(key, stride) for key in self._utilized}

    @property
    def utilized_count(self) -> int:
        return len(self._utilized)

    @property
    def by_sender(self) -> dict[int, int]:
        """Charged messages per sender vertex (load distribution),
        materialized from the flat counter array (zero entries omitted,
        matching the previous dict semantics)."""
        counts = self._sender_counts
        if counts is None:
            return dict(self._sender_fallback)
        return {v: c for v, c in enumerate(counts) if c}

    def summary(self) -> dict:
        return {
            "sends": self.sends,
            "messages": self.messages,
            "words": self.words,
            "rounds": self.rounds,
            "dropped_messages": self.dropped_messages,
            "crashed_nodes": self.crashed_nodes,
            "utilized_edges": len(self._utilized),
            "stages": [s.as_dict() for s in self.stages],
        }

    def __repr__(self) -> str:
        return (
            f"MessageStats(messages={self.messages}, rounds={self.rounds}, "
            f"utilized={len(self._utilized)})"
        )
