"""Distributed multi-host sweep execution: the experiment farm.

The exponent fits behind the paper's claims want many families x sizes
x seeds x engines cells — more than one machine delivers in reasonable
time.  This module splits
:class:`~repro.experiments.spec.SweepSpec` matrices across hosts:

* a **coordinator** (:class:`Coordinator` / :func:`serve_sweep` /
  ``repro farm serve``) serves cells over a TCP work queue with lease +
  heartbeat + requeue-on-dead-worker semantics and merges every
  incoming record into resumable JSON-lines
  :class:`~repro.experiments.store.ResultStore` files;
* a **worker** (:func:`run_worker`, ``repro worker --connect
  HOST:PORT``) pulls cells, runs each through the supervised process
  farm (per-cell timeouts and retries included, exactly as a local
  sweep would), and streams the records back.

Since PR 10 the coordinator is **multi-tenant**: one farm process
serves any number of *named sweeps*, each with its own
:class:`WorkQueue`, its own result store, and a priority; workers are
fed across tenants by fair-share leasing (highest priority first, then
least recently served).  ``repro sweep --serve`` still works unchanged
— it is the single-tenant special case, serving one sweep named
``"default"`` and exiting when it completes — while ``repro farm
serve`` keeps the process up between sweeps (``persistent=True``) and
accepts new tenants over the wire.

Wire protocol
-------------
JSON-lines over a plain TCP socket, strictly request/response from the
worker's side, versioned so a coordinator and worker with different
conventions refuse to mix records instead of silently mispooling them:

    worker -> {"type": "hello", "protocol": "repro-sweep", "version": V,
               "worker": ID}
    coord  <- {"type": "welcome", "version": V, "lease_s": S}
            | {"type": "reject", "reason": ...}        # then close
    worker -> {"type": "lease"}                        # classic, or:
    worker -> {"type": "lease", "max_cells": K}        # batched
    coord  <- {"type": "cell", "cell": {...}, "sweep": NAME}
            | {"type": "cells", "sweep": NAME, "cells": [{...}, ...]}
            | {"type": "idle", "retry_s": S}           # leased out, wait
            | {"type": "shutdown"}                     # sweep complete
    worker -> {"type": "heartbeat", "key": K, "sweep": NAME}
    coord  <- {"type": "ok"} | {"type": "gone"}        # lease revoked:
                                                       # kill the cell
    worker -> {"type": "heartbeat", "keys": [K...], "sweep": NAME}
    coord  <- {"type": "ok", "gone": [K...]}           # batch form
    worker -> {"type": "result", "record": {...}, "sweep": NAME}
    coord  <- {"type": "ok", "accepted": bool}
    any    -> {"type": "status"}                       # read-only
    coord  <- {"type": "status", pending/leased/done/workers/sweeps/...}
    any    -> {"type": "submit", "name": N, "spec": {...},
               "fingerprint": F, "priority": P}        # new tenant
    coord  <- {"type": "ok", "sweep": N, "created": bool, "total": T}
    any    -> {"type": "attach", "name": N}
    coord  <- {"type": "sweep", ...per-sweep snapshot...}
    any    -> {"type": "list"}
    coord  <- {"type": "sweeps", "sweeps": {N: {...}, ...}}
    any    -> {"type": "cancel", "name": N}
    coord  <- {"type": "ok", "sweep": N, "dropped": D, "revoked": R}

Every addition is *additive*: the protocol version stays 1, an old
worker that never sends ``max_cells`` gets the classic single-``cell``
reply (the ``sweep`` field rides along unread) and keeps working
against the farm's default tenant selection; a farm verb the peer
cannot satisfy answers ``{"type": "error", "reason": ...}`` instead of
closing the connection.

Leases are keyed on ``cell.key()``.  A worker that stops heartbeating
(crash, network partition) has its leases expire and the cells are
re-served to other workers; a cell requeued more than ``max_requeues``
times is recorded with ``status="lost"`` so the sweep still terminates.
Duplicate results for one key (a lease that expired on a worker that
then finished anyway) are dropped at the queue, and the store's readers
apply last-record-wins per key regardless, so the merged store is safe
to aggregate even when races slip through.

Worker-side batching amortizes the per-cell lease/heartbeat churn that
dominates sub-second cells: a worker asks for up to K cells per round
trip, runs them sequentially, and one heartbeat covers the whole
in-flight batch (current cell plus the queued remainder).  K is
auto-tuned from an EWMA of observed cell wall time so the batch fits
inside ``min(batch_target_s, lease_s)`` — long cells degrade to K=1,
the classic protocol.

Self-healing semantics (the reasons hour-long robustness sweeps survive
real faults, not just simulated ones):

* **Worker reconnect.**  A worker that loses its coordinator retries
  the connection with exponential backoff + deterministic jitter,
  bounded by ``reconnect`` consecutive failed attempts, resuming the
  same ``worker_id``.  A result whose submission was cut off mid-send
  is re-submitted on the next connection instead of recomputed.
* **Lease-revocation cancellation.**  A heartbeat answered ``gone``
  means the coordinator re-served the cell; the worker terminates the
  in-flight child process (the ``cancel`` seam on
  :func:`~repro.experiments.runner._run_cells_with_timeout`) and drops
  the stale record instead of computing to completion.  In a batch,
  revoked not-yet-started cells are silently dropped from the
  remainder.
* **Coordinator drain.**  SIGTERM/SIGINT on ``repro sweep --serve`` /
  ``repro farm serve`` stops leasing, answers ``shutdown`` to lease
  requests, gives in-flight cells a grace window to land, fsyncs every
  tenant's store + the journal, and exits 0.
* **Queue journal.**  The coordinator periodically writes an fsync'd
  snapshot of *every* tenant queue (spec, done keys, requeue counts,
  live leases) beside the stores; ``--resume-journal`` restores all of
  them so a bounced farm neither re-runs completed cells nor forgets
  ``max_requeues`` history, for any tenant.
"""

from __future__ import annotations

import json
import os
import random
import re
import socket
import socketserver
import threading
import time
from collections import deque
from typing import Callable, Iterable, Optional

from repro.errors import DistributedError, ProtocolMismatchError, ReproError
from repro.experiments.runner import (
    _failure_record,
    _run_cells_with_timeout,
)
from repro.experiments.spec import Cell, SweepSpec
from repro.experiments.store import ResultStore, write_json_atomic

PROTOCOL = "repro-sweep"
PROTOCOL_VERSION = 1
DEFAULT_LEASE_S = 30.0
DEFAULT_MAX_REQUEUES = 5
#: Worker-side deadline for one request/response exchange (the
#: coordinator answers every verb immediately; only a dead or wedged
#: coordinator is slower).
DEFAULT_REQUEST_TIMEOUT_S = 10.0
#: Consecutive failed (re)connection attempts before a worker gives up.
DEFAULT_RECONNECT_ATTEMPTS = 5
DEFAULT_BACKOFF_S = 0.5
DEFAULT_BACKOFF_MAX_S = 15.0
DEFAULT_JOURNAL_INTERVAL_S = 2.0
DEFAULT_DRAIN_GRACE_S = 5.0

#: The tenant name single-sweep entry points (`repro sweep --serve`,
#: Coordinator(spec=...)) serve under — old workers land here.
DEFAULT_SWEEP = "default"
DEFAULT_PRIORITY = 0
#: Upper bound on cells per batched lease; the EWMA tuner never asks
#: for more than fit in ``batch_target_s`` of observed wall time.
DEFAULT_MAX_BATCH = 16
#: Wall-time worth of cells a worker aims to hold per round trip.
#: Deliberately well under the default lease: the whole batch must
#: finish (or heartbeat) before any of its leases expire.
DEFAULT_BATCH_TARGET_S = 5.0
#: Smoothing for the worker's per-cell wall-time estimate.
BATCH_EWMA_ALPHA = 0.3

_SWEEP_NAME_PATTERN = r"[A-Za-z0-9][A-Za-z0-9._-]{0,63}"
#: Sweep names become store file names (`<name>.jsonl`), so the grammar
#: excludes separators and anything a shell would mangle.
_SWEEP_NAME_RE = re.compile(rf"^{_SWEEP_NAME_PATTERN}$")


# -- framing ------------------------------------------------------------------


def _send_msg(wfile, msg: dict) -> None:
    wfile.write((json.dumps(msg, sort_keys=True) + "\n").encode("utf-8"))
    wfile.flush()


def _recv_msg(rfile) -> Optional[dict]:
    """One JSON-lines message, or None when the peer closed the stream."""
    line = rfile.readline()
    if not line:
        return None
    return _parse_msg(line)


def _parse_msg(line: bytes) -> dict:
    try:
        msg = json.loads(line)
    except json.JSONDecodeError as exc:
        raise DistributedError(f"malformed protocol line: {exc}")
    if not isinstance(msg, dict):
        raise DistributedError("protocol message is not an object")
    return msg


#: Public names for the JSON-lines framing: the serving layer
#: (:mod:`repro.serving`) speaks the same wire format, so the project
#: has exactly one framing implementation.
send_msg = _send_msg
recv_msg = _recv_msg


# -- the lease queue ----------------------------------------------------------


class WorkQueue:
    """Thread-safe cell queue with per-key leases.

    One tenant's single source of truth: every cell is either pending,
    leased (keyed on ``cell.key()``, with an expiry a healthy worker
    keeps pushing forward via heartbeats), or done.  Expired or dropped
    leases put the cell back on the pending deque; a cell that keeps
    getting requeued (``max_requeues`` exceeded) comes back from
    :meth:`reap` as *lost* so the caller can record a failure and the
    sweep can still finish.
    """

    def __init__(self, cells: Iterable[Cell],
                 lease_s: float = DEFAULT_LEASE_S,
                 max_requeues: int = DEFAULT_MAX_REQUEUES):
        self.lease_s = lease_s
        self.max_requeues = max_requeues
        self._lock = threading.Lock()
        self._pending: deque[Cell] = deque(cells)
        #: key -> [cell, worker_id, expires_at]
        self._leases: dict[str, list] = {}
        self._requeues: dict[str, int] = {}
        self._done: set[str] = set()
        #: done keys whose recorded outcome is a failure (lost lease or
        #: a non-ok record) — still supersedable by a real ok record.
        self._failed: set[str] = set()
        #: keys this queue instance has handed out at least once; a key
        #: completed without ever being leased here (a reconnecting
        #: worker re-submitting to a journal-restored queue) may still
        #: sit in the pending deque and must be scanned out.
        self._ever_leased: set[str] = set()

    def lease(self, worker: str,
              now: Optional[float] = None) -> Optional[Cell]:
        """Hand the next pending cell to ``worker`` (None = none free)."""
        cells = self.lease_batch(worker, 1, now=now)
        return cells[0] if cells else None

    def lease_batch(self, worker: str, max_cells: int,
                    now: Optional[float] = None) -> list[Cell]:
        """Hand up to ``max_cells`` pending cells to ``worker`` in one
        turn — the batched lease all K cells' expiries start from."""
        now = time.monotonic() if now is None else now
        cells: list[Cell] = []
        with self._lock:
            while self._pending and len(cells) < max_cells:
                cell = self._pending.popleft()
                self._leases[cell.key()] = [cell, worker,
                                            now + self.lease_s]
                self._ever_leased.add(cell.key())
                cells.append(cell)
        return cells

    def heartbeat(self, worker: str, key: str,
                  now: Optional[float] = None) -> bool:
        """Extend ``worker``'s lease on ``key``; False if it no longer
        holds one (expired and reassigned — the result may be dropped)."""
        now = time.monotonic() if now is None else now
        with self._lock:
            lease = self._leases.get(key)
            if lease is None or lease[1] != worker:
                return False
            lease[2] = now + self.lease_s
            return True

    def complete(self, worker: str, key: str, ok: bool) -> bool:
        """Mark ``key`` done; True if the caller should keep the record.

        Any worker's result completes the key — even one whose lease
        expired (its record is just as valid; the cell is fixed-seed
        deterministic).  A key already done is a duplicate and the
        record should be dropped, with one asymmetry: a key whose
        recorded outcome so far is a *failure* (a lost lease, or a
        timeout/error submitted by a presumed-dead worker while the
        re-served copy was still running) is superseded by a later real
        ok record — last-record-wins, the store readers' convention.
        """
        with self._lock:
            if key in self._done:
                if ok and key in self._failed:
                    self._failed.discard(key)
                    return True
                return False
            self._leases.pop(key, None)
            # Only a requeued key — or one this queue never leased (a
            # reconnecting worker re-submitting into a journal-restored
            # queue) — can still sit in pending; a never-requeued key
            # leased here was popped when leased, so the deque scan is
            # skipped in the common case.
            if self._requeues.get(key) or key not in self._ever_leased:
                self._pending = deque(
                    c for c in self._pending if c.key() != key
                )
            self._done.add(key)
            if not ok:
                self._failed.add(key)
            return True

    def release_worker(self, worker: str) -> list[Cell]:
        """Requeue every lease held by a disconnected worker."""
        with self._lock:
            keys = [k for k, lease in self._leases.items()
                    if lease[1] == worker]
            return [self._requeue_locked(k) for k in keys]

    def reap(self, now: Optional[float] = None) -> list[Cell]:
        """Requeue expired leases; returns the cells declared *lost*
        (requeued more than ``max_requeues`` times, now marked done)."""
        now = time.monotonic() if now is None else now
        lost = []
        with self._lock:
            expired = [k for k, lease in self._leases.items()
                       if lease[2] < now]
            for key in expired:
                cell = self._requeue_locked(key)
                if cell is not None:
                    lost.append(cell)
        return lost

    def cancel(self) -> tuple[int, list[str]]:
        """Drop all pending cells and revoke every live lease.

        Returns ``(dropped, revoked_keys)``.  Afterwards the queue is
        finished: heartbeats answer ``gone`` (killing in-flight cells)
        and results for revoked keys are refused by the coordinator's
        cancelled-tenant check.
        """
        with self._lock:
            dropped = len(self._pending)
            self._pending.clear()
            revoked = sorted(self._leases)
            self._leases.clear()
            return dropped, revoked

    def _requeue_locked(self, key: str) -> Optional[Cell]:
        """Drop ``key``'s lease; returns the cell only if it became
        lost (otherwise it went back on the pending deque)."""
        cell, _, _ = self._leases.pop(key)
        self._requeues[key] = self._requeues.get(key, 0) + 1
        if self._requeues[key] > self.max_requeues:
            self._done.add(key)
            self._failed.add(key)
            return cell
        self._pending.append(cell)
        return None

    def requeues(self, key: str) -> int:
        with self._lock:
            return self._requeues.get(key, 0)

    def finished(self) -> bool:
        with self._lock:
            return not self._pending and not self._leases

    def outstanding(self) -> int:
        with self._lock:
            return len(self._pending) + len(self._leases)

    def pending_count(self) -> int:
        with self._lock:
            return len(self._pending)

    def has_leases(self) -> bool:
        with self._lock:
            return bool(self._leases)

    def knows(self, key: str) -> bool:
        """Whether ``key`` belongs to this queue (done, leased, or
        pending) — the coordinator's last-resort record router for
        legacy workers that tag results with neither sweep nor route."""
        with self._lock:
            return (key in self._done or key in self._leases
                    or any(c.key() == key for c in self._pending))

    def counts(self) -> dict:
        """Live queue counts for the ``status`` verb / progress lines."""
        with self._lock:
            return {
                "pending": len(self._pending),
                "leased": len(self._leases),
                "done": len(self._done),
                "failed": len(self._failed),
            }

    def leases_by_worker(self) -> dict[str, list[str]]:
        """Current leases grouped by holder (key lists, sorted)."""
        out: dict[str, list[str]] = {}
        with self._lock:
            for key, (_, worker, _) in self._leases.items():
                out.setdefault(worker, []).append(key)
        for keys in out.values():
            keys.sort()
        return out

    # -- journal (crash-restart) snapshot ---------------------------------

    def snapshot(self) -> dict:
        """JSON-safe queue state for the coordinator's journal.

        Pending cells are *not* serialized — a restart re-expands them
        from the spec minus the store's completed keys; the journal only
        has to carry what that re-expansion can't reconstruct: done keys
        (including failed/lost ones a store-based resume would retry),
        requeue counts, and the keys leased at snapshot time.
        """
        with self._lock:
            return {
                "done": sorted(self._done),
                "failed": sorted(self._failed),
                "requeues": dict(self._requeues),
                "leased": sorted(self._leases),
            }

    def restore(self, snapshot: dict) -> list[Cell]:
        """Apply a journal snapshot to a freshly built queue.

        Keys the journal says are done leave the pending deque; requeue
        counts are restored so ``max_requeues`` history survives the
        restart; keys that were *leased* when the journal was written
        lost their worker with the old coordinator, so each one is
        charged a requeue exactly as a dead-worker release would.
        Returns the cells that exhausted their requeue budget in the
        process (declared lost — the caller records them).
        """
        lost: list[Cell] = []
        with self._lock:
            for key, count in snapshot.get("requeues", {}).items():
                self._requeues[key] = max(
                    self._requeues.get(key, 0), int(count))
            self._done.update(snapshot.get("done", ()))
            self._failed.update(snapshot.get("failed", ()))
            for key in snapshot.get("leased", ()):
                if key not in self._done:
                    self._requeues[key] = self._requeues.get(key, 0) + 1
            still: deque[Cell] = deque()
            for cell in self._pending:
                key = cell.key()
                if key in self._done:
                    continue
                if self._requeues.get(key, 0) > self.max_requeues:
                    self._done.add(key)
                    self._failed.add(key)
                    lost.append(cell)
                else:
                    still.append(cell)
            self._pending = still
        return lost


class QueueJournal:
    """Durable queue snapshots beside the result stores.

    The stores alone cannot restart a mid-sweep coordinator faithfully:
    they know the *ok* cells (resume skips them) but not the requeue
    history (``max_requeues`` would reset, so a worker-killing cell
    could loop forever across coordinator bounces) nor which
    failed/lost keys the dying coordinator had already given up on.
    The journal is a single atomically-replaced, fsync'd JSON file
    carrying exactly that per tenant (:meth:`WorkQueue.snapshot` plus
    each sweep's spec and fingerprint), written periodically and at
    drain.

    Two on-disk formats are understood: the multi-tenant
    ``repro-farm-journal`` (:meth:`write_farm` — what coordinators
    write now) and the single-sweep ``repro-queue-journal``
    (:meth:`write` — the legacy flat layout, still accepted on load so
    pre-farm journals resume cleanly as the ``default`` tenant).
    """

    def __init__(self, path: str):
        self.path = path

    def write(self, snapshot: dict, fingerprint: Optional[str] = None,
              drained: bool = False) -> None:
        """Legacy single-sweep layout: one flat queue snapshot."""
        write_json_atomic(self.path, {
            "format": "repro-queue-journal",
            "version": PROTOCOL_VERSION,
            "fingerprint": fingerprint,
            "drained": drained,
            **snapshot,
        })

    def write_farm(self, sweeps: dict, drained: bool = False) -> None:
        """Multi-tenant layout: one entry per named sweep, each a queue
        snapshot plus the spec needed to re-expand its pending cells."""
        write_json_atomic(self.path, {
            "format": "repro-farm-journal",
            "version": 2,
            "drained": drained,
            "sweeps": sweeps,
        })

    def load(self) -> Optional[dict]:
        """The last snapshot, or None when no journal exists yet."""
        if not os.path.exists(self.path):
            return None
        try:
            with open(self.path, encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise DistributedError(
                f"unreadable queue journal {self.path}: {exc}")
        if payload.get("format") not in ("repro-queue-journal",
                                         "repro-farm-journal"):
            raise DistributedError(
                f"{self.path} is not a repro queue journal")
        return payload

    def remove(self) -> None:
        try:
            os.unlink(self.path)
        except OSError:
            pass


def _journal_sweeps(payload: dict) -> dict:
    """Normalize either journal format to ``{name: entry}``.

    A legacy flat journal becomes one entry for the ``default`` tenant
    (no spec recorded — legacy coordinators re-expanded from their own
    command line), so every reader handles exactly one shape.
    """
    if payload.get("format") == "repro-farm-journal":
        sweeps = payload.get("sweeps") or {}
        return {str(name): dict(entry) for name, entry in sweeps.items()}
    return {DEFAULT_SWEEP: {
        "spec": None,
        "fingerprint": payload.get("fingerprint"),
        "priority": DEFAULT_PRIORITY,
        "cancelled": False,
        "done": payload.get("done", []),
        "failed": payload.get("failed", []),
        "requeues": payload.get("requeues", {}),
        "leased": payload.get("leased", []),
    }}


# -- per-tenant state ---------------------------------------------------------


class SweepState:
    """One named sweep inside a multi-tenant coordinator.

    Owns the tenant's queue, store, priority, and bookkeeping; the
    coordinator's global counters are sums over these.
    """

    def __init__(self, name: str, spec: Optional[SweepSpec],
                 cells: Optional[Iterable[Cell]],
                 store: Optional[ResultStore], owns_store: bool,
                 priority: int, lease_s: float, max_requeues: int):
        self.name = name
        self.spec = spec
        self.fingerprint = spec.fingerprint() if spec is not None else None
        self.store = store
        #: Farm-opened stores are closed by the coordinator at stop();
        #: caller-supplied ones stay the caller's to close.
        self.owns_store = owns_store
        self.priority = priority
        self.cancelled = False
        if cells is None:
            cells = spec.cells()
        done = store.completed_keys() if store is not None else set()
        todo = [c for c in cells if c.key() not in done]
        self.total = len(todo)
        self.queue = WorkQueue(todo, lease_s=lease_s,
                               max_requeues=max_requeues)
        self.fresh: list[dict] = []
        self.duplicates = 0
        #: Fair-share clock: bumped to the coordinator's lease sequence
        #: each time this tenant is served, so ties on priority go to
        #: the tenant served longest ago.
        self.last_leased_seq = 0
        self.started_at = time.monotonic()

    def snapshot(self, now: Optional[float] = None) -> dict:
        """JSON-safe per-sweep view for ``status``/``attach``/``list``."""
        now = time.monotonic() if now is None else now
        counts = self.queue.counts()
        outstanding = counts["pending"] + counts["leased"]
        elapsed = max(1e-9, now - self.started_at)
        rate = len(self.fresh) / elapsed
        return {
            "name": self.name,
            "priority": self.priority,
            "cancelled": self.cancelled,
            "fingerprint": self.fingerprint,
            "total": self.total,
            "pending": counts["pending"],
            "leased": counts["leased"],
            "done": self.total - outstanding,
            "lost": counts["failed"],
            "records": len(self.fresh),
            "duplicates": self.duplicates,
            "cells_per_s": round(rate, 4),
            "eta_s": (round(outstanding / rate, 1) if rate > 0
                      and outstanding else (0.0 if not outstanding
                                            else None)),
            "finished": self.queue.finished(),
            "store": self.store.path if self.store is not None else None,
        }


# -- coordinator --------------------------------------------------------------


def _farm_verb_reply(coord: "Coordinator", msg: dict) -> dict:
    """Handle one farm-management verb; errors become error *replies*
    (the connection stays usable), unlike worker-verb errors which drop
    the peer."""
    kind = msg.get("type")
    try:
        if kind == "submit":
            spec_dict = msg.get("spec")
            if not isinstance(spec_dict, dict):
                raise DistributedError("submit without a spec")
            spec = SweepSpec.from_dict(spec_dict)
            sent = msg.get("fingerprint")
            if sent is not None and sent != spec.fingerprint():
                raise DistributedError(
                    f"submitted fingerprint {sent} != recomputed "
                    f"{spec.fingerprint()} (coordinator/client schema "
                    "skew?)")
            state, created = coord.add_sweep(
                msg.get("name"), spec=spec,
                priority=int(msg.get("priority", DEFAULT_PRIORITY)))
            return {"type": "ok", "sweep": state.name,
                    "created": created, "total": state.total,
                    "fingerprint": state.fingerprint}
        if kind == "attach":
            return {"type": "sweep",
                    **coord.sweep_snapshot(msg.get("name"))}
        if kind == "list":
            return {"type": "sweeps", "sweeps": coord.sweeps_snapshot()}
        if kind == "cancel":
            return {"type": "ok",
                    **coord.cancel_sweep(msg.get("name"))}
        raise DistributedError(f"unknown farm verb {kind!r}")
    except (DistributedError, ReproError, TypeError, ValueError) as exc:
        return {"type": "error", "reason": str(exc)}


class _WorkerConnection(socketserver.StreamRequestHandler):
    """One coordinator-side thread per connected worker."""

    def handle(self):  # noqa: C901 - one dispatch loop, clearer flat
        coord: "Coordinator" = self.server.coordinator
        # A healthy worker is never silent longer than a lease (it
        # heartbeats at lease/3 while running); a socket quiet for two
        # leases is a dead peer and its cells must go back in the queue.
        self.connection.settimeout(max(10.0, 2 * coord.lease_s))
        worker = None
        registered = False
        try:
            hello = _recv_msg(self.rfile)
            if (not hello or hello.get("type") != "hello"
                    or hello.get("protocol") != PROTOCOL):
                _send_msg(self.wfile, {
                    "type": "reject",
                    "reason": "not a repro-sweep worker handshake",
                })
                return
            if hello.get("version") != PROTOCOL_VERSION:
                _send_msg(self.wfile, {
                    "type": "reject",
                    "reason": (
                        f"protocol version {hello.get('version')!r} != "
                        f"coordinator {PROTOCOL_VERSION}; records from "
                        "mismatched conventions must not be pooled — "
                        "upgrade the older side"
                    ),
                })
                return
            worker = str(hello.get("worker")
                         or f"{self.client_address[0]}:{self.client_address[1]}")
            # Control clients (`repro farm status|submit|...`) are
            # read-or-manage peers: they never lease, so they don't
            # enter the worker registry that drain/status report on.
            registered = hello.get("role") != "status"
            if registered:
                coord.worker_connected(worker)
            _send_msg(self.wfile, {"type": "welcome",
                                   "version": PROTOCOL_VERSION,
                                   "lease_s": coord.lease_s})
            while True:
                msg = _recv_msg(self.rfile)
                if msg is None:
                    return
                kind = msg.get("type")
                if kind == "lease":
                    coord.touch_worker(worker)
                    if coord.draining:
                        # Drain: no new work leaves the coordinator; the
                        # worker is released cleanly mid-sweep.
                        _send_msg(self.wfile, {"type": "shutdown"})
                        return
                    max_cells = msg.get("max_cells")
                    batch = (max(1, int(max_cells))
                             if max_cells is not None else 1)
                    name, cells = coord.lease_cells(worker, batch)
                    if cells and max_cells is None:
                        # Classic reply for pre-batching workers; the
                        # sweep name is additive (old workers ignore it).
                        _send_msg(self.wfile, {"type": "cell",
                                               "cell": cells[0].to_dict(),
                                               "sweep": name})
                    elif cells:
                        _send_msg(self.wfile, {
                            "type": "cells",
                            "sweep": name,
                            "cells": [c.to_dict() for c in cells],
                        })
                    elif coord.work_complete():
                        _send_msg(self.wfile, {"type": "shutdown"})
                        return
                    else:
                        # Everything is leased out (or the farm is idle
                        # but persistent); work may still arrive.
                        _send_msg(self.wfile, {
                            "type": "idle",
                            "retry_s": min(1.0, coord.lease_s / 4),
                        })
                elif kind == "heartbeat":
                    coord.touch_worker(worker, heartbeat=True)
                    sweep = msg.get("sweep")
                    if "keys" in msg:
                        gone = coord.heartbeat_keys(
                            worker, [str(k) for k in msg.get("keys") or []],
                            sweep=sweep)
                        _send_msg(self.wfile, {"type": "ok", "gone": gone})
                    else:
                        alive = coord.lease_heartbeat(
                            worker, msg.get("key"), sweep=sweep)
                        _send_msg(self.wfile,
                                  {"type": "ok" if alive else "gone"})
                elif kind == "result":
                    record = msg.get("record")
                    if not isinstance(record, dict) or "key" not in record:
                        raise DistributedError("result without a record")
                    accepted = coord.submit(worker, record,
                                            sweep=msg.get("sweep"))
                    _send_msg(self.wfile, {"type": "ok",
                                           "accepted": accepted})
                elif kind == "status":
                    _send_msg(self.wfile, {"type": "status",
                                           **coord.status_snapshot()})
                elif kind in ("submit", "attach", "list", "cancel"):
                    _send_msg(self.wfile, _farm_verb_reply(coord, msg))
                else:
                    raise DistributedError(
                        f"unknown message type {kind!r}")
        except (DistributedError, socket.timeout, OSError):
            # Whatever this worker held goes back in the queue; the
            # reaper/finish logic below records anything declared lost.
            pass
        finally:
            if worker is not None:
                coord.release_worker_cells(worker)
                if registered:
                    coord.worker_disconnected(worker)


class _CoordinatorServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


class Coordinator:
    """Serve sweeps' cells to remote workers and merge their records.

    The counterpart of :func:`repro.experiments.run_sweep` for
    multi-host execution: the same resume semantics (cells whose key the
    store already holds are never served), the same stores (every record
    a worker streams back is appended and flushed immediately, to the
    tenant that leased the cell), and the same failure conventions (a
    cell no worker could finish is recorded with ``status="lost"``,
    ``valid=False``, excluded from fits and retried by the next resume).

    Two shapes:

    * **single sweep** (the classic, ``repro sweep --serve``)::

          coord = Coordinator(spec, store=store)
          host, port = coord.start()
          ... point `repro worker --connect host:port` at it ...
          fresh = coord.wait()      # returns when the sweep completes

    * **persistent farm** (``repro farm serve``)::

          coord = Coordinator(persistent=True, store_dir="results/")
          coord.start()
          ... `repro farm submit --name exp-a ...` adds tenants over
          ... the wire (or call coord.add_sweep directly) ...
          coord.drain()             # SIGTERM handler calls this
          coord.wait()              # returns after the drain settles

    A persistent coordinator never declares the work complete on its
    own — an empty farm idles, waiting for the next ``submit`` — so
    :meth:`wait` only returns after :meth:`drain`.
    """

    def __init__(
        self,
        spec: Optional[SweepSpec] = None,
        store: Optional[ResultStore] = None,
        cells: Optional[Iterable[Cell]] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        lease_s: float = DEFAULT_LEASE_S,
        max_requeues: int = DEFAULT_MAX_REQUEUES,
        progress: Optional[Callable[[dict, int, int], None]] = None,
        journal: Optional[QueueJournal] = None,
        resume_journal: bool = False,
        journal_interval_s: float = DEFAULT_JOURNAL_INTERVAL_S,
        persistent: bool = False,
        store_dir: Optional[str] = None,
        name: str = DEFAULT_SWEEP,
        priority: int = DEFAULT_PRIORITY,
    ):
        if spec is None and cells is None and not persistent:
            raise DistributedError("Coordinator needs a spec or cells")
        self.lease_s = lease_s
        self.max_requeues = max_requeues
        self.fresh: list[dict] = []
        self.drained = False
        self._persistent = persistent
        self._store_dir = store_dir
        # Attached below, *after* the initial sweep registers: add_sweep
        # persists the registry, which must not clobber a journal that
        # resume_journal is about to load.
        self._journal = None
        self._journal_interval_s = journal_interval_s
        self._progress = progress
        self._lock = threading.Lock()
        #: worker_id -> {connections, completed, last_seen,
        #:               last_heartbeat} (monotonic clocks)
        self._workers: dict[str, dict] = {}
        self._started_at = time.monotonic()
        # Serializes tenant bookkeeping — the sweep registry, lease
        # routing, and "mark done in the queue" with "write the
        # record"; check_finished takes it too, so no thread can observe
        # the queues finished while the final record is still unwritten
        # (wait() returning before the last append reaches a store).
        self._submit_lock = threading.Lock()
        self._sweeps: dict[str, SweepState] = {}
        #: (worker_id, cell key) -> sweep name, written at lease time
        #: so legacy results (no ``sweep`` field) still route home.
        self._routes: dict[tuple[str, str], str] = {}
        self._lease_seq = 0
        self._finished = threading.Event()
        self._draining = threading.Event()
        self._server: Optional[_CoordinatorServer] = None
        self._threads: list[threading.Thread] = []
        self._host, self._port = host, port
        if spec is not None or cells is not None:
            self.add_sweep(name, spec=spec, cells=cells, store=store,
                           priority=priority)
        self._journal = journal
        if journal is not None and resume_journal:
            payload = journal.load()
            if payload is not None:
                self._restore_journal(payload)
        self.check_finished()

    # -- tenant registry ---------------------------------------------------

    def add_sweep(
        self,
        name: str,
        spec: Optional[SweepSpec] = None,
        cells: Optional[Iterable[Cell]] = None,
        store: Optional[ResultStore] = None,
        priority: int = DEFAULT_PRIORITY,
        owns_store: bool = False,
    ) -> tuple[SweepState, bool]:
        """Register (or find) a named sweep; returns (state, created).

        Submitting the same name with the same spec fingerprint is
        idempotent (the live tenant is returned, ``created=False``);
        the same name with a *different* spec is an error — records
        from different matrices must not share a store.  Resubmitting a
        *cancelled* name revives it with a fresh queue (the store, if
        farm-managed, resumes from its completed keys as usual).
        """
        name = str(name or "")
        if not _SWEEP_NAME_RE.match(name):
            raise DistributedError(
                f"invalid sweep name {name!r} "
                f"(want /{_SWEEP_NAME_PATTERN}/)")
        if spec is None and cells is None:
            raise DistributedError(f"sweep {name!r} needs a spec or cells")
        fingerprint = spec.fingerprint() if spec is not None else None
        with self._submit_lock:
            if self._draining.is_set():
                raise DistributedError(
                    "coordinator is draining; not accepting new sweeps")
            existing = self._sweeps.get(name)
            if existing is not None and not existing.cancelled:
                if (fingerprint is not None
                        and existing.fingerprint is not None
                        and fingerprint != existing.fingerprint):
                    raise DistributedError(
                        f"sweep {name!r} is already being served for a "
                        f"different spec (fingerprint "
                        f"{existing.fingerprint} != {fingerprint})")
                return existing, False
            if (existing is not None and existing.owns_store
                    and existing.store is not None):
                try:
                    existing.store.close()
                except OSError:
                    pass
            if store is None and self._store_dir is not None:
                store = ResultStore(
                    os.path.join(self._store_dir, f"{name}.jsonl"))
                owns_store = True
            state = SweepState(name, spec, cells, store, owns_store,
                               priority, self.lease_s, self.max_requeues)
            self._sweeps[name] = state
            if not state.queue.finished():
                self._finished.clear()
        self.check_finished()
        self._journal_write()
        return state, True

    def _states(self) -> list[SweepState]:
        with self._submit_lock:
            return list(self._sweeps.values())

    # -- legacy single-sweep surface ---------------------------------------

    @property
    def queue(self) -> WorkQueue:
        """The default (or sole) tenant's queue — the single-sweep API."""
        with self._submit_lock:
            state = self._sweeps.get(DEFAULT_SWEEP)
            if state is None and len(self._sweeps) == 1:
                state = next(iter(self._sweeps.values()))
        if state is None:
            raise DistributedError(
                "no default sweep on this coordinator; address tenants "
                "by name")
        return state.queue

    @property
    def total(self) -> int:
        return sum(s.total for s in list(self._sweeps.values()))

    @property
    def duplicates(self) -> int:
        return sum(s.duplicates for s in list(self._sweeps.values()))

    # -- journal restore ---------------------------------------------------

    def _restore_journal(self, payload: dict) -> None:
        entries = _journal_sweeps(payload)
        if not self._persistent:
            extras = sorted(set(entries) - set(self._sweeps))
            if extras:
                raise DistributedError(
                    f"queue journal {self._journal.path} holds sweeps "
                    f"this coordinator is not serving "
                    f"({', '.join(extras)}); resume the whole farm with "
                    "`repro farm serve --resume-journal` instead")
        for name, entry in entries.items():
            state = self._sweeps.get(name)
            if state is None:
                # Persistent farm: rebuild the tenant from its
                # journalled spec.
                spec_dict = entry.get("spec")
                if not spec_dict:
                    raise DistributedError(
                        f"journal entry for sweep {name!r} carries no "
                        "spec (written by an older coordinator?); "
                        "submit the sweep again instead of resuming")
                state, _ = self.add_sweep(
                    name, spec=SweepSpec.from_dict(spec_dict),
                    priority=int(entry.get("priority", DEFAULT_PRIORITY)))
            theirs = entry.get("fingerprint")
            if (theirs is not None and state.fingerprint is not None
                    and theirs != state.fingerprint):
                raise DistributedError(
                    f"queue journal {self._journal.path} was written for "
                    f"a different sweep (fingerprint {theirs} != "
                    f"{state.fingerprint}); refusing to replay its "
                    "requeue history into this one"
                )
            if entry.get("cancelled"):
                state.cancelled = True
                state.queue.cancel()
            for cell in state.queue.restore(entry):
                self._record_lost(state, cell)

    # -- lifecycle --------------------------------------------------------

    def start(self) -> tuple[str, int]:
        """Bind, start serving in background threads; returns (host, port)."""
        self._server = _CoordinatorServer(
            (self._host, self._port), _WorkerConnection
        )
        self._server.coordinator = self
        self.address = self._server.server_address[:2]
        serve = threading.Thread(target=self._server.serve_forever,
                                 kwargs={"poll_interval": 0.1},
                                 daemon=True)
        reap = threading.Thread(target=self._reap_loop, daemon=True)
        serve.start()
        reap.start()
        self._threads = [serve, reap]
        if self._journal is not None:
            journal = threading.Thread(target=self._journal_loop,
                                       daemon=True)
            journal.start()
            self._threads.append(journal)
        return self.address

    def wait(self, timeout: Optional[float] = None,
             linger_s: float = 0.0) -> list[dict]:
        """Block until every cell is recorded (or the coordinator is
        drained); returns the fresh records.

        ``linger_s`` keeps the coordinator up briefly after the last
        record so workers parked in the idle loop can come back for
        their shutdown message instead of finding a dead socket.
        """
        if not self._finished.wait(timeout):
            outstanding = sum(s.queue.outstanding()
                              for s in self._states())
            raise DistributedError(
                f"sweep not finished after {timeout}s "
                f"({outstanding} cells outstanding)"
            )
        if linger_s > 0:
            time.sleep(linger_s)
        self._flush_durable()
        self.stop()
        return self.fresh

    # -- graceful drain ----------------------------------------------------

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    def drain(self, grace_s: float = DEFAULT_DRAIN_GRACE_S) -> None:
        """Stop leasing and wind the coordinator down within ``grace_s``.

        Signal-handler safe (returns immediately; a watcher thread does
        the waiting): lease requests are answered ``shutdown`` from now
        on, in-flight cells get up to ``grace_s`` to land their results,
        then every store and the journal are fsync'd and :meth:`wait`
        returns whatever completed.  ``drained`` distinguishes this exit
        from a completed sweep.
        """
        if self._draining.is_set():
            return
        self.drained = True
        self._draining.set()
        watcher = threading.Thread(target=self._drain_watch,
                                   args=(grace_s,), daemon=True)
        watcher.start()
        self._threads.append(watcher)

    def _drain_watch(self, grace_s: float) -> None:
        deadline = time.monotonic() + grace_s
        while (time.monotonic() < deadline
                and not self._finished.is_set()
                and any(s.queue.has_leases() for s in self._states())):
            time.sleep(0.05)
        self._flush_durable()
        self._finished.set()

    def _flush_durable(self) -> None:
        """Push every tenant store to disk and journal the final state."""
        for state in self._states():
            if state.store is not None:
                try:
                    state.store.sync()
                except (OSError, ValueError):
                    pass    # a closed store has nothing left to sync
        self._journal_write()

    def stop(self) -> None:
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        for state in self._states():
            if state.owns_store and state.store is not None:
                try:
                    state.store.close()
                except OSError:
                    pass

    def __enter__(self) -> "Coordinator":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- leasing / record sinks (handler and reaper threads) ---------------

    def lease_cells(self, worker: str,
                    max_cells: int = 1) -> tuple[Optional[str], list[Cell]]:
        """Fair-share lease of up to ``max_cells`` cells from one tenant.

        Tenant choice: highest priority wins; ties go to the tenant
        least recently served (a whole batch counts as one serving, so
        equal-priority sweeps alternate batches).  All cells in a batch
        come from a single sweep — one store, one ``sweep`` tag, one
        heartbeat covering them all.
        """
        with self._submit_lock:
            candidates = [s for s in self._sweeps.values()
                          if not s.cancelled
                          and s.queue.pending_count() > 0]
            if not candidates:
                return None, []
            best = max(candidates,
                       key=lambda s: (s.priority, -s.last_leased_seq))
            self._lease_seq += 1
            best.last_leased_seq = self._lease_seq
            cells = best.queue.lease_batch(worker, max_cells)
            for cell in cells:
                self._routes[(worker, cell.key())] = best.name
            return (best.name, cells) if cells else (None, [])

    def _resolve_locked(self, worker: str, key: str,
                        sweep: Optional[str]) -> Optional[SweepState]:
        """Which tenant does (worker, key) belong to?  Explicit tag
        first, then the lease route, then the sole tenant, then a scan
        (legacy worker re-submitting into a journal-restored farm)."""
        if sweep is not None:
            return self._sweeps.get(str(sweep))
        name = self._routes.get((worker, key))
        if name is not None:
            return self._sweeps.get(name)
        states = list(self._sweeps.values())
        if len(states) == 1:
            return states[0]
        for state in states:
            if state.queue.knows(key):
                return state
        return None

    def submit(self, worker: str, record: dict,
               sweep: Optional[str] = None) -> bool:
        """Merge one worker record; False if dropped (duplicate, or a
        cancelled/unknown tenant)."""
        self.touch_worker(worker, completed=True)
        with self._submit_lock:
            key = record["key"]
            state = self._resolve_locked(worker, key, sweep)
            self._routes.pop((worker, key), None)
            if state is None or state.cancelled:
                accepted = False
            else:
                ok = record.get("status", "ok") == "ok"
                if not state.queue.complete(worker, key, ok):
                    state.duplicates += 1
                    accepted = False
                else:
                    self._record(state, record)
                    accepted = True
        self.check_finished()
        return accepted

    def lease_heartbeat(self, worker: str, key: str,
                        sweep: Optional[str] = None) -> bool:
        """Extend one lease; False = gone (revoked or cancelled)."""
        with self._submit_lock:
            state = self._resolve_locked(worker, str(key), sweep)
            if state is None or state.cancelled:
                return False
            return state.queue.heartbeat(worker, str(key))

    def heartbeat_keys(self, worker: str, keys: list[str],
                       sweep: Optional[str] = None) -> list[str]:
        """Batch heartbeat: returns the subset of ``keys`` whose leases
        are gone (the worker kills/drops exactly those cells)."""
        gone = []
        with self._submit_lock:
            for key in keys:
                state = self._resolve_locked(worker, key, sweep)
                if (state is None or state.cancelled
                        or not state.queue.heartbeat(worker, key)):
                    gone.append(key)
        return gone

    def cancel_sweep(self, name: str) -> dict:
        """Stop a tenant: drop its pending cells, revoke its leases.

        In-flight workers learn at their next heartbeat (``gone``) and
        kill the cell; late results for the tenant are refused.  The
        tenant stays listed (``cancelled: true``) for status/attach and
        can be revived by resubmitting the same name.
        """
        with self._submit_lock:
            state = self._sweeps.get(str(name or ""))
            if state is None:
                raise DistributedError(f"no sweep named {name!r}")
            state.cancelled = True
            dropped, revoked = state.queue.cancel()
            for route in [r for r, n in self._routes.items()
                          if n == state.name]:
                del self._routes[route]
        self.check_finished()
        self._journal_write()
        return {"sweep": state.name, "dropped": dropped,
                "revoked": len(revoked)}

    # -- worker registry (drives `repro farm status`) ----------------------

    def worker_connected(self, worker: str) -> None:
        now = time.monotonic()
        with self._lock:
            entry = self._workers.setdefault(worker, {
                "connections": 0, "completed": 0,
                "last_seen": now, "last_heartbeat": None,
            })
            entry["connections"] += 1
            entry["last_seen"] = now

    def worker_disconnected(self, worker: str) -> None:
        with self._lock:
            entry = self._workers.get(worker)
            if entry is not None:
                entry["connections"] = max(0, entry["connections"] - 1)

    def touch_worker(self, worker: str, heartbeat: bool = False,
                     completed: bool = False) -> None:
        now = time.monotonic()
        with self._lock:
            entry = self._workers.get(worker)
            if entry is None:
                return
            entry["last_seen"] = now
            if heartbeat:
                entry["last_heartbeat"] = now
            if completed:
                entry["completed"] += 1

    def status_snapshot(self) -> dict:
        """The read-only ``status`` verb's payload (JSON-safe).

        Global queue counts (sums over tenants, so single-sweep readers
        see exactly the pre-farm shape), per-worker health (connection
        state, cells completed, heartbeat/last-message ages, held
        leases), per-sweep snapshots, and session throughput —
        ``cells_per_s`` over this coordinator's lifetime and the ETA it
        implies for the outstanding cells.
        """
        now = time.monotonic()
        states = self._states()
        counts = [s.queue.counts() for s in states]
        leases: dict[str, list[str]] = {}
        for s in states:
            for wid, keys in s.queue.leases_by_worker().items():
                leases.setdefault(wid, []).extend(keys)
        for keys in leases.values():
            keys.sort()
        with self._lock:
            workers = {
                wid: {
                    "connected": entry["connections"] > 0,
                    "completed": entry["completed"],
                    "last_seen_age_s": round(now - entry["last_seen"], 3),
                    "last_heartbeat_age_s": (
                        round(now - entry["last_heartbeat"], 3)
                        if entry["last_heartbeat"] is not None else None),
                    "leases": leases.get(wid, []),
                }
                for wid, entry in self._workers.items()
            }
        total = sum(s.total for s in states)
        pending = sum(c["pending"] for c in counts)
        leased = sum(c["leased"] for c in counts)
        outstanding = pending + leased
        elapsed = max(1e-9, now - self._started_at)
        rate = len(self.fresh) / elapsed
        return {
            "total": total,
            "pending": pending,
            "leased": leased,
            "done": total - outstanding,
            "lost": sum(c["failed"] for c in counts),
            "records": len(self.fresh),
            "duplicates": sum(s.duplicates for s in states),
            "active_workers": sum(
                1 for w in workers.values() if w["connected"]),
            "workers": workers,
            "elapsed_s": round(elapsed, 3),
            "cells_per_s": round(rate, 4),
            "eta_s": (round(outstanding / rate, 1) if rate > 0
                      and outstanding else (0.0 if not outstanding
                                            else None)),
            "draining": self.draining,
            "finished": self._finished.is_set(),
            "persistent": self._persistent,
            "sweeps": {s.name: s.snapshot(now) for s in states},
        }

    def sweep_snapshot(self, name: str) -> dict:
        """One tenant's snapshot (the ``attach`` verb's payload)."""
        with self._submit_lock:
            state = self._sweeps.get(str(name or ""))
        if state is None:
            raise DistributedError(f"no sweep named {name!r}")
        return state.snapshot()

    def sweeps_snapshot(self) -> dict:
        """All tenants' snapshots (the ``list`` verb's payload)."""
        now = time.monotonic()
        return {s.name: s.snapshot(now) for s in self._states()}

    def release_worker_cells(self, worker: str) -> None:
        """Requeue a disconnected worker's leases across every tenant,
        recording any that exhausted their requeue budget."""
        with self._submit_lock:
            for state in self._sweeps.values():
                for cell in state.queue.release_worker(worker):
                    if cell is not None:
                        self._record_lost(state, cell)
            for route in [r for r in self._routes if r[0] == worker]:
                del self._routes[route]
        self.check_finished()

    def _record_lost(self, state: SweepState, cell: Cell) -> None:
        """A cell no worker could hold a lease on long enough."""
        self._record(state, _failure_record(
            cell, "lost",
            attempts=state.queue.requeues(cell.key()),
            error=("lease expired or worker died "
                   f"{state.queue.requeues(cell.key())} times"),
        ))

    def _record(self, state: SweepState, rec: dict) -> None:
        with self._lock:
            state.fresh.append(rec)
            self.fresh.append(rec)
            if state.store is not None:
                state.store.append(rec)
            count = len(self.fresh)
        if self._progress is not None:
            self._progress(rec, count, self.total)

    def work_complete(self) -> bool:
        """Would a lease request be answered ``shutdown``?  A
        persistent farm idles instead of shutting workers down — more
        work may be submitted any minute."""
        with self._submit_lock:
            return self._all_done_locked()

    def _all_done_locked(self) -> bool:
        if self._persistent and not self._draining.is_set():
            return False
        return all(s.queue.finished() for s in self._sweeps.values())

    def check_finished(self) -> None:
        with self._submit_lock:
            if self._all_done_locked():
                self._finished.set()

    def _reap_loop(self) -> None:
        interval = max(0.05, self.lease_s / 4)
        while not self._finished.wait(interval):
            with self._submit_lock:
                for state in self._sweeps.values():
                    for cell in state.queue.reap():
                        self._record_lost(state, cell)
            self.check_finished()

    def _journal_loop(self) -> None:
        interval = max(0.05, self._journal_interval_s)
        while not self._finished.wait(interval):
            self._journal_write()

    def _journal_write(self) -> None:
        if self._journal is None:
            return
        states = self._states()
        sweeps = {}
        for s in states:
            sweeps[s.name] = {
                "spec": s.spec.to_dict() if s.spec is not None else None,
                "fingerprint": s.fingerprint,
                "priority": s.priority,
                "cancelled": s.cancelled,
                **s.queue.snapshot(),
            }
        try:
            self._journal.write_farm(sweeps, drained=self.drained)
        except OSError:
            # A journal that cannot be written degrades restart fidelity,
            # not the live sweep; the stores still hold every record.
            pass


def serve_sweep(
    spec: SweepSpec,
    store: Optional[ResultStore] = None,
    host: str = "127.0.0.1",
    port: int = 0,
    lease_s: float = DEFAULT_LEASE_S,
    max_requeues: int = DEFAULT_MAX_REQUEUES,
    progress: Optional[Callable[[dict, int, int], None]] = None,
    on_listen: Optional[Callable[[str, int], None]] = None,
    timeout: Optional[float] = None,
    linger_s: float = 2.0,
    journal_path: Optional[str] = None,
    resume_journal: bool = False,
    journal_interval_s: float = DEFAULT_JOURNAL_INTERVAL_S,
) -> list[dict]:
    """Serve ``spec``'s unfinished cells to workers until all complete.

    The distributed sibling of :func:`repro.experiments.run_sweep`, and
    the single-tenant special case of the farm: one sweep named
    ``"default"``, exiting when it completes.  Same resumable store,
    same return value (the newly produced records).  ``on_listen``
    receives the bound (host, port) — with ``port=0`` that is the only
    way to learn the chosen port.  ``journal_path`` enables the fsync'd
    queue journal; ``resume_journal`` additionally restores it at
    startup (see :class:`QueueJournal`).
    """
    journal = QueueJournal(journal_path) if journal_path else None
    coord = Coordinator(spec, store=store, host=host, port=port,
                        lease_s=lease_s, max_requeues=max_requeues,
                        progress=progress, journal=journal,
                        resume_journal=resume_journal,
                        journal_interval_s=journal_interval_s)
    bound_host, bound_port = coord.start()
    if on_listen is not None:
        on_listen(bound_host, bound_port)
    try:
        return coord.wait(timeout, linger_s=linger_s)
    finally:
        coord.stop()


# -- control clients (status / farm management) -------------------------------


def _control_exchange(host: str, port: int, requests: list[dict],
                      timeout_s: float = DEFAULT_REQUEST_TIMEOUT_S,
                      role: str = "status") -> list[dict]:
    """Run a short request/reply conversation under one total deadline.

    Unlike the worker loop's per-request timeouts, ``timeout_s`` here
    bounds the *whole* exchange with a monotonic deadline re-armed
    before every socket operation — a wedged coordinator that trickles
    a byte per timeout window can stall a per-read timeout forever, but
    not this (`repro farm status` against a hung farm returns in
    ``timeout_s``, full stop).
    """
    deadline = time.monotonic() + timeout_s
    try:
        sock = socket.create_connection((host, port), timeout=timeout_s)
    except OSError as exc:
        raise DistributedError(
            f"cannot reach coordinator at {host}:{port}: {exc}")
    replies: list[dict] = []
    with sock:
        buf = b""

        def _arm() -> None:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise socket.timeout("control deadline exhausted")
            sock.settimeout(remaining)

        def _send(msg: dict) -> None:
            _arm()
            sock.sendall(
                (json.dumps(msg, sort_keys=True) + "\n").encode("utf-8"))

        def _recv_line() -> Optional[bytes]:
            # Manual framing on the raw socket: makefile().readline()
            # cannot be bounded by a total deadline, only per-read.
            nonlocal buf
            while b"\n" not in buf:
                _arm()
                chunk = sock.recv(65536)
                if not chunk:
                    return None
                buf += chunk
            line, buf = buf.split(b"\n", 1)
            return line

        try:
            _send({"type": "hello", "protocol": PROTOCOL,
                   "version": PROTOCOL_VERSION,
                   "worker": f"{role}-{os.getpid()}",
                   "role": "status"})
            line = _recv_line()
            if line is None:
                raise DistributedError("coordinator closed during handshake")
            welcome = _parse_msg(line)
            if welcome.get("type") == "reject":
                raise ProtocolMismatchError(
                    welcome.get("reason", "handshake rejected"))
            for request in requests:
                _send(request)
                line = _recv_line()
                if line is None:
                    raise DistributedError("coordinator closed mid-exchange")
                replies.append(_parse_msg(line))
        except socket.timeout:
            raise DistributedError("coordinator stopped responding")
        except OSError as exc:
            raise DistributedError(f"control exchange failed: {exc}")
    return replies


def fetch_status(host: str, port: int,
                 timeout_s: float = DEFAULT_REQUEST_TIMEOUT_S) -> dict:
    """One read-only ``status`` round trip against a live coordinator.

    The client behind ``repro farm status``: handshakes with
    ``role="status"`` (so it never appears in the worker registry),
    asks once, returns the snapshot dict.  ``timeout_s`` bounds the
    whole call — connect, handshake, and reply.
    """
    [reply] = _control_exchange(host, port, [{"type": "status"}],
                                timeout_s=timeout_s)
    if reply.get("type") != "status":
        raise DistributedError(
            f"unexpected status reply "
            f"{reply.get('type')!r} (old coordinator?)")
    return reply


def _farm_request(host: str, port: int, msg: dict, expect: str,
                  timeout_s: float, role: str) -> dict:
    [reply] = _control_exchange(host, port, [msg],
                                timeout_s=timeout_s, role=role)
    if reply.get("type") == "error":
        raise DistributedError(
            reply.get("reason") or f"{msg['type']} refused")
    if reply.get("type") != expect:
        raise DistributedError(
            f"unexpected {msg['type']} reply "
            f"{reply.get('type')!r} (old coordinator?)")
    return reply


def submit_sweep(host: str, port: int, name: str, spec: SweepSpec,
                 priority: int = DEFAULT_PRIORITY,
                 timeout_s: float = DEFAULT_REQUEST_TIMEOUT_S) -> dict:
    """Register a named sweep on a running farm (`repro farm submit`).

    Carries the spec and its fingerprint; the coordinator recomputes
    the fingerprint from the shipped spec and refuses on mismatch, so a
    client/coordinator schema skew cannot silently mint a different
    matrix under the submitted name.  Returns the coordinator's ack
    (``sweep``, ``created``, ``total``, ``fingerprint``).
    """
    return _farm_request(host, port, {
        "type": "submit", "name": name, "spec": spec.to_dict(),
        "fingerprint": spec.fingerprint(), "priority": priority,
    }, "ok", timeout_s, "submit")


def fetch_sweep(host: str, port: int, name: str,
                timeout_s: float = DEFAULT_REQUEST_TIMEOUT_S) -> dict:
    """One tenant's live snapshot (`repro farm attach` polls this)."""
    return _farm_request(host, port, {"type": "attach", "name": name},
                         "sweep", timeout_s, "attach")


def list_sweeps(host: str, port: int,
                timeout_s: float = DEFAULT_REQUEST_TIMEOUT_S) -> dict:
    """All tenants' snapshots, keyed by sweep name."""
    return _farm_request(host, port, {"type": "list"},
                         "sweeps", timeout_s, "list")["sweeps"]


def cancel_sweep(host: str, port: int, name: str,
                 timeout_s: float = DEFAULT_REQUEST_TIMEOUT_S) -> dict:
    """Cancel a named sweep (`repro farm cancel`); returns the ack
    (``dropped`` pending cells, ``revoked`` live leases)."""
    return _farm_request(host, port, {"type": "cancel", "name": name},
                         "ok", timeout_s, "cancel")


# -- worker -------------------------------------------------------------------


def _run_leased_cell(cell: Cell, heartbeat: Callable[[], bool],
                     interval: float) -> Optional[dict]:
    """Run one cell through the supervised farm, heartbeating meanwhile.

    The farm (one slot) gives the exact local-sweep semantics — the cell
    executes in a child process with its ``timeout_s``/``retries``
    honored and errors captured as records — while this thread stays
    free to service the lease.

    ``heartbeat`` returns False when the coordinator revoked the lease
    (``gone``): the in-flight child process is terminated through the
    farm's cancel seam and ``None`` comes back — the caller must *not*
    submit anything, the cell now belongs to another worker.  A
    heartbeat that *raises* (connection loss) gets the same reaping on
    the way out: the farm child never outlives its lease.
    """
    out: list[dict] = []
    cancel = threading.Event()
    runner = threading.Thread(
        target=_run_cells_with_timeout, args=([cell], 1, out.append),
        kwargs={"cancel": cancel},
        daemon=True,
    )
    runner.start()
    try:
        while runner.is_alive():
            runner.join(interval)
            if runner.is_alive() and not heartbeat():
                cancel.set()
                runner.join()
                return None
    except BaseException:
        cancel.set()
        runner.join()
        raise
    if not out:
        # The farm records every outcome; an empty result means the
        # farm thread itself died, which is a worker bug.
        return _failure_record(cell, "error",
                               error="farm produced no record")
    return out[0]


def _run_leased_batch(
    cells: list[Cell],
    heartbeat: Callable[[list[str]], set],
    interval: float,
    submit: Callable[[dict, float], None],
) -> None:
    """Run a batch of leased cells sequentially, one heartbeat for all.

    ``heartbeat(keys)`` covers the in-flight cell *and* the queued
    remainder (their leases age while they wait their turn) and returns
    the subset of keys whose leases are gone: revoked queued cells are
    dropped from the batch, a revoked in-flight cell is killed through
    the cancel seam and not submitted.  A heartbeat that raises kills
    the in-flight child on the way out, exactly like the single-cell
    path.  ``submit(record, wall_s)`` is called per completed cell (the
    wall time feeds the worker's EWMA batch tuner); a submit that
    raises (connection cut mid-send) aborts the rest of the batch — the
    coordinator requeues the unfinished cells when their leases lapse,
    and the cut-off record is re-submitted after reconnect.
    """
    remaining: deque[Cell] = deque(cells)
    last_beat = time.monotonic()

    def _beat(current_key: Optional[str]) -> bool:
        """Heartbeat everything in flight; True = current cell revoked."""
        nonlocal last_beat, remaining
        keys = ([current_key] if current_key is not None else [])
        keys += [c.key() for c in remaining]
        gone = heartbeat(keys)
        last_beat = time.monotonic()
        if gone:
            remaining = deque(c for c in remaining
                              if c.key() not in gone)
        return current_key is not None and current_key in gone

    while remaining:
        cell = remaining.popleft()
        out: list[dict] = []
        cancel = threading.Event()
        runner = threading.Thread(
            target=_run_cells_with_timeout, args=([cell], 1, out.append),
            kwargs={"cancel": cancel},
            daemon=True,
        )
        started = time.monotonic()
        runner.start()
        revoked = False
        try:
            while runner.is_alive():
                due_in = last_beat + interval - time.monotonic()
                if due_in > 0:
                    runner.join(due_in)
                if not runner.is_alive():
                    break
                if _beat(cell.key()):
                    cancel.set()
                    runner.join()
                    revoked = True
                    break
        except BaseException:
            cancel.set()
            runner.join()
            raise
        if revoked:
            continue
        wall = time.monotonic() - started
        record = (out[0] if out else
                  _failure_record(cell, "error",
                                  error="farm produced no record"))
        submit(record, wall)
        # Quick cells can drain the whole batch without the join loop
        # ever heartbeating; keep the queued remainder's leases alive.
        if remaining and time.monotonic() - last_beat >= interval:
            _beat(None)


def _batch_size(ewma_wall: Optional[float], max_batch: int,
                batch_target_s: float, lease_s: float) -> int:
    """How many cells to lease this round trip.

    Until a wall-time estimate exists, probe with one cell (also the
    pre-batching behavior for long cells); afterwards take as many as
    fit the target window — never past the lease, never past
    ``max_batch``.  Sub-second cells approach ``max_batch``; cells
    slower than the window degrade to the classic one-at-a-time flow.
    """
    if max_batch <= 1 or ewma_wall is None:
        return 1
    window = min(batch_target_s, lease_s)
    return max(1, min(max_batch, int(window / max(ewma_wall, 1e-6))))


def _observe_wall(state: "_WorkerState", wall_s: float) -> None:
    if state.ewma_wall is None:
        state.ewma_wall = wall_s
    else:
        state.ewma_wall = (BATCH_EWMA_ALPHA * wall_s
                           + (1 - BATCH_EWMA_ALPHA) * state.ewma_wall)


class _WorkerState:
    """What survives a worker's reconnects: the completion count, the
    cell-wall EWMA steering the batch size, and records whose
    submission was cut off mid-send (re-submitted on the next
    connection instead of recomputed)."""

    def __init__(self):
        self.completed = 0
        #: (record, sweep name or None) not yet acked by a coordinator.
        self.pending: list[tuple[dict, Optional[str]]] = []
        self.progressed = 0     # successful exchanges; resets backoff
        self.ewma_wall: Optional[float] = None


def run_worker(
    host: str,
    port: int,
    worker_id: Optional[str] = None,
    poll_s: float = 1.0,
    progress: Optional[Callable[[dict, int], None]] = None,
    reconnect: int = DEFAULT_RECONNECT_ATTEMPTS,
    backoff_s: float = DEFAULT_BACKOFF_S,
    backoff_max_s: float = DEFAULT_BACKOFF_MAX_S,
    request_timeout_s: float = DEFAULT_REQUEST_TIMEOUT_S,
    on_reconnect: Optional[Callable[[int, float, str], None]] = None,
    connect: Optional[Callable[[], socket.socket]] = None,
    max_batch: int = DEFAULT_MAX_BATCH,
    batch_target_s: float = DEFAULT_BATCH_TARGET_S,
) -> int:
    """Pull cells from a coordinator until it declares the sweep done.

    Returns the number of cells this worker completed (across every
    connection — the same ``worker_id`` is resumed after a reconnect).
    A lost or refused connection is retried with exponential backoff
    and deterministic jitter, up to ``reconnect`` *consecutive* failed
    attempts (any successful exchange resets the budget); only then
    does :class:`DistributedError` surface.  A version-rejected
    handshake (:class:`ProtocolMismatchError`) is never retried —
    reconnecting cannot fix a protocol skew.

    ``max_batch``/``batch_target_s`` steer cell batching: the worker
    asks for up to ``max_batch`` cells per lease round trip, sized so
    (by the EWMA of observed cell wall time) a batch fits in
    ``batch_target_s`` seconds; ``max_batch=1`` restores the classic
    one-cell-per-trip protocol against any coordinator.

    ``on_reconnect(attempt, delay_s, reason)`` observes each retry
    (the CLI logs it); ``connect`` is a seam returning a connected
    socket, substituted by tests with scripted flaky sockets.
    """
    worker_id = worker_id or f"{socket.gethostname()}-{os.getpid()}"
    if connect is None:
        def connect() -> socket.socket:
            return socket.create_connection((host, port),
                                            timeout=request_timeout_s)
    # Deterministic jitter: seeded per worker id, so a fleet of workers
    # bounced by one coordinator restart de-synchronizes its retries
    # reproducibly rather than stampeding back in lockstep.
    jitter = random.Random(f"{worker_id}/reconnect")
    state = _WorkerState()
    failures = 0
    while True:
        progressed_before = state.progressed
        try:
            sock = connect()
            with sock:
                return _worker_loop(sock, poll_s, worker_id, progress,
                                    state, request_timeout_s,
                                    max_batch=max_batch,
                                    batch_target_s=batch_target_s)
        except ProtocolMismatchError:
            raise
        except (DistributedError, OSError) as exc:
            if state.progressed > progressed_before:
                failures = 0    # the link worked; this is a new outage
            failures += 1
            if failures > reconnect:
                raise DistributedError(
                    f"connection to coordinator lost and {reconnect} "
                    f"reconnect attempt(s) failed: {exc}")
            delay = min(backoff_max_s, backoff_s * 2 ** (failures - 1))
            delay *= 0.5 + jitter.random()      # [0.5x, 1.5x) jitter
            if on_reconnect is not None:
                on_reconnect(failures, delay, str(exc))
            time.sleep(delay)


def _worker_loop(sock, poll_s: float, worker_id: str, progress,
                 state: _WorkerState,
                 request_timeout_s: float = DEFAULT_REQUEST_TIMEOUT_S,
                 max_batch: int = DEFAULT_MAX_BATCH,
                 batch_target_s: float = DEFAULT_BATCH_TARGET_S) -> int:
    """The protocol side of :func:`run_worker`, on an open socket."""
    rfile = sock.makefile("rb")
    wfile = sock.makefile("wb")
    # Per-request deadlines, not one blanket timeout: every exchange is
    # an immediate request/response, so each send/recv pair gets its own
    # short deadline — a coordinator that stops answering is detected in
    # seconds regardless of how long the lease (and therefore the old
    # blanket 2x-lease timeout) is.
    sock.settimeout(request_timeout_s)

    def _request(msg: dict) -> dict:
        sock.settimeout(request_timeout_s)
        try:
            _send_msg(wfile, msg)
            reply = _recv_msg(rfile)
        except socket.timeout:
            raise DistributedError("coordinator stopped responding")
        if reply is None:
            raise DistributedError("connection to coordinator lost")
        state.progressed += 1
        return reply

    _send_msg(wfile, {"type": "hello", "protocol": PROTOCOL,
                      "version": PROTOCOL_VERSION,
                      "worker": worker_id})
    try:
        welcome = _recv_msg(rfile)
    except socket.timeout:
        raise DistributedError("coordinator stopped responding")
    if welcome is None:
        raise DistributedError("coordinator closed during handshake")
    if welcome.get("type") == "reject":
        raise ProtocolMismatchError(
            welcome.get("reason", "handshake rejected"))
    if welcome.get("type") != "welcome":
        raise DistributedError(
            f"unexpected handshake reply {welcome.get('type')!r}")
    state.progressed += 1
    lease_s = float(welcome.get("lease_s", DEFAULT_LEASE_S))
    heartbeat_interval = max(0.05, lease_s / 3)

    def _flush_pending() -> None:
        # Every record stays stashed until the coordinator acks it: if
        # the connection dies mid-send the reconnected loop re-submits
        # instead of recomputing (the queue dedups if the coordinator
        # did receive it).
        while state.pending:
            record, sweep = state.pending[0]
            msg = {"type": "result", "record": record}
            if sweep is not None:
                msg["sweep"] = sweep
            _request(msg)
            state.pending.pop(0)
            state.completed += 1
            if progress is not None:
                progress(record, state.completed)

    def _submit(record: dict, sweep: Optional[str]) -> None:
        state.pending.append((record, sweep))
        _flush_pending()

    _flush_pending()

    while True:
        lease_msg: dict = {"type": "lease"}
        if max_batch > 1:
            lease_msg["max_cells"] = _batch_size(
                state.ewma_wall, max_batch, batch_target_s, lease_s)
        reply = _request(lease_msg)
        kind = reply.get("type")
        if kind == "shutdown":
            return state.completed
        if kind == "idle":
            time.sleep(float(reply.get("retry_s", poll_s)))
            continue
        if kind == "cell":
            cell = Cell.from_dict(reply["cell"])
            sweep = reply.get("sweep")

            def _heartbeat(cell=cell, sweep=sweep) -> bool:
                hb = {"type": "heartbeat", "key": cell.key()}
                if sweep is not None:
                    hb["sweep"] = sweep
                return _request(hb).get("type") == "ok"

            started = time.monotonic()
            record = _run_leased_cell(cell, heartbeat=_heartbeat,
                                      interval=heartbeat_interval)
            if record is None:
                # Lease revoked mid-run: the child was killed, the
                # record dropped; whoever re-leased the cell owns it.
                continue
            _observe_wall(state, time.monotonic() - started)
            _submit(record, sweep)
        elif kind == "cells":
            cells = [Cell.from_dict(c) for c in reply.get("cells", [])]
            sweep = reply.get("sweep")

            def _heartbeat_keys(keys, sweep=sweep) -> set:
                hb = {"type": "heartbeat", "keys": list(keys)}
                if sweep is not None:
                    hb["sweep"] = sweep
                r = _request(hb)
                if r.get("type") != "ok":
                    raise DistributedError(
                        f"unexpected heartbeat reply {r.get('type')!r}")
                return set(r.get("gone") or ())

            def _deliver(record, wall_s, sweep=sweep) -> None:
                _observe_wall(state, wall_s)
                _submit(record, sweep)

            _run_leased_batch(cells, heartbeat=_heartbeat_keys,
                              interval=heartbeat_interval,
                              submit=_deliver)
        else:
            raise DistributedError(
                f"unexpected lease reply {kind!r}")
