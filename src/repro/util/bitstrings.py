"""Random bit strings and their CONGEST word accounting.

Algorithm 1 broadcasts a string R of O(log^2 n) random bits; Algorithm 2
broadcasts (C / eps) log^3 n bits.  Nodes then derive limited-independence
hash functions locally from R.  A BitString knows how many O(log n)-bit
CONGEST words it occupies so the broadcast substrate can charge the right
number of messages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence


@dataclass(frozen=True)
class BitString:
    """An immutable sequence of bits with CONGEST word accounting."""

    bits: tuple[int, ...]

    def __post_init__(self) -> None:
        if any(b not in (0, 1) for b in self.bits):
            raise ValueError("BitString entries must be 0 or 1")

    def __len__(self) -> int:
        return len(self.bits)

    def __iter__(self) -> Iterator[int]:
        return iter(self.bits)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return BitString(self.bits[index])
        return self.bits[index]

    def words(self, word_bits: int) -> int:
        """Number of word_bits-bit CONGEST words needed to carry this string."""
        if word_bits <= 0:
            raise ValueError("word size must be positive")
        return max(1, -(-len(self.bits) // word_bits))

    def to_int(self) -> int:
        value = 0
        for b in self.bits:
            value = (value << 1) | b
        return value

    @staticmethod
    def from_int(value: int, length: int) -> "BitString":
        bits = tuple((value >> (length - 1 - i)) & 1 for i in range(length))
        return BitString(bits)

    def concat(self, other: "BitString") -> "BitString":
        return BitString(self.bits + other.bits)


def random_bitstring(rng, length: int) -> BitString:
    """Draw ``length`` fair bits from a ``random.Random``-like source."""
    return BitString(tuple(rng.getrandbits(1) for _ in range(length)))


def bits_from_ints(values: Sequence[int], word_bits: int) -> BitString:
    """Pack integers (each < 2**word_bits) into one bit string."""
    bits: list[int] = []
    for v in values:
        if v < 0 or v >= (1 << word_bits):
            raise ValueError(f"value {v} does not fit in {word_bits} bits")
        bits.extend((v >> (word_bits - 1 - i)) & 1 for i in range(word_bits))
    return BitString(tuple(bits))
