"""Failure injection and adversarial edge cases across the stack.

Production-quality distributed code is defined by how it fails: these
tests feed the engine and algorithms deliberately broken inputs and
assert loud, early, specific failures (never silent corruption).
"""

import pytest

from repro.congest.ids import IdAssignment, NodeId
from repro.congest.network import SyncNetwork
from repro.congest.node import FunctionAlgorithm, NodeAlgorithm
from repro.coloring.johansson import johansson_color
from repro.errors import (
    ConvergenceError,
    ModelViolationError,
    ProtocolError,
    ReproError,
)
from repro.graphs.core import Graph
from repro.graphs.generators import connected_gnp_graph, disjoint_cycles


def test_unencodable_payload_rejected_at_send(path4):
    net = SyncNetwork(path4, seed=1)

    def fn(ctx, inbox):
        if ctx.round == 0 and ctx.neighbor_ids:
            ctx.send(ctx.neighbor_ids[0], "bad", {"dict": 1})
        ctx.done(None)

    with pytest.raises(ModelViolationError):
        net.run(lambda: FunctionAlgorithm(fn))


def test_float_payload_rejected(path4):
    net = SyncNetwork(path4, seed=2)

    def fn(ctx, inbox):
        if ctx.round == 0 and ctx.neighbor_ids:
            ctx.send(ctx.neighbor_ids[0], "bad", 3.14)
        ctx.done(None)

    with pytest.raises(ModelViolationError):
        net.run(lambda: FunctionAlgorithm(fn))


def test_danner_on_disconnected_graph_fails_loudly():
    from repro.substrates.danner import build_danner

    g = disjoint_cycles(2, 6)
    net = SyncNetwork(g, seed=3)
    with pytest.raises(ConvergenceError):
        build_danner(net, seed=4)


def test_algorithm1_on_disconnected_graph_fails_loudly():
    from repro.coloring.algorithm1 import run_algorithm1

    g = disjoint_cycles(3, 5)
    net = SyncNetwork(g, seed=5)
    with pytest.raises((ConvergenceError, ProtocolError)):
        run_algorithm1(net, seed=6)


def test_johansson_with_all_empty_palettes_defers_everywhere():
    g = connected_gnp_graph(20, 0.3, seed=7)
    net = SyncNetwork(g, seed=8)
    res = johansson_color(net, [None] * g.n,
                          [frozenset()] * g.n)
    assert all(o and o.get("deferred") for o in res.outputs)


def test_johansson_with_overlapping_singletons_partial_progress():
    """Adversarial lists: clique with palette {0,1}: two nodes can color
    (0 and 1), the rest must defer — never a wrong output."""
    from repro.graphs.generators import complete_graph

    g = complete_graph(5)
    net = SyncNetwork(g, seed=9)
    res = johansson_color(net, [None] * 5,
                          [frozenset({0, 1})] * 5)
    colors = [o.get("color") for o in res.outputs if o and "color" in o]
    deferred = sum(1 for o in res.outputs if o and o.get("deferred"))
    assert len(colors) + deferred == 5
    assert len(set(colors)) == len(colors)   # colored ones are distinct
    assert deferred >= 3


def test_assignment_must_match_graph():
    g = Graph(3, [(0, 1)])
    with pytest.raises(ReproError):
        SyncNetwork(g, assignment=IdAssignment([1, 2, 3, 4]), seed=10)


def test_node_never_calling_done_times_out(path4):
    net = SyncNetwork(path4, seed=11)

    class Forever(NodeAlgorithm):
        def on_round(self, ctx, inbox):
            if ctx.round % 2 == 0 and ctx.neighbor_ids:
                ctx.send(ctx.neighbor_ids[0], "tick")

    with pytest.raises(ConvergenceError):
        net.run(Forever, max_rounds=50)


def test_self_send_impossible(path4):
    net = SyncNetwork(path4, seed=12)

    def fn(ctx, inbox):
        if ctx.round == 0:
            ctx.send(ctx.my_id, "self")
        ctx.done(None)

    with pytest.raises(ModelViolationError):
        net.run(lambda: FunctionAlgorithm(fn))


def test_algorithm3_sampling_cap():
    """sample_constant large enough to exceed probability 1 must cap."""
    from repro.mis.algorithm3 import run_algorithm3
    from repro.mis.verify import check_mis

    g = connected_gnp_graph(30, 0.3, seed=13)
    net = SyncNetwork(g, rho=2, seed=14)
    r = run_algorithm3(net, seed=15, sample_constant=100.0)
    assert r.sampled == g.n     # everyone sampled
    check_mis(g, r.in_mis)


def test_opaque_ids_cannot_leak_through_outputs():
    """Harness-side code reading outputs still cannot read opaque values."""
    from repro.errors import ComparisonDisciplineError

    g = connected_gnp_graph(10, 0.4, seed=16)
    net = SyncNetwork(g, seed=17, comparison_based=True)

    def fn(ctx, inbox):
        ctx.done(ctx.my_id)

    res = net.run(lambda: FunctionAlgorithm(fn))
    with pytest.raises(ComparisonDisciplineError):
        _ = res.outputs[0].value


def test_zero_round_budget(path4):
    net = SyncNetwork(path4, seed=18)

    class Chat(NodeAlgorithm):
        def on_round(self, ctx, inbox):
            for u in ctx.neighbor_ids:
                ctx.send(u, "x")

    with pytest.raises(ConvergenceError):
        net.run(Chat, max_rounds=0)


def test_unknown_id_value_lookup(path4):
    net = SyncNetwork(path4, seed=19)
    with pytest.raises(KeyError):
        net.vertex_of(NodeId(123456789))
